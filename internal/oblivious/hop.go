package oblivious

import (
	"fmt"
	"math/rand/v2"
	"sync"

	"sparseroute/internal/flow"
	"sparseroute/internal/graph"
)

// HopConstrained is a hop-budgeted Valiant-style oblivious routing: to route
// u -> v with hop budget h, pick a uniformly random intermediate w among
// vertices with hop(u,w) + hop(w,v) <= h and concatenate hop-shortest paths
// u -> w -> v. Every returned path has at most h hops; the random
// intermediate spreads load the way Valiant's trick does.
//
// It substitutes for the hop-constrained oblivious routings of GHZ21 [14]:
// the paper's completion-time construction (Lemma 2.8) only consumes the
// interface — a family {R_h} of oblivious routings with dilation <= O(h) and
// good congestion per hop class — which this provides on the benchmark
// topologies. See DESIGN.md.
type HopConstrained struct {
	g      *graph.Graph
	budget int
	// hopDist[v] is the BFS distance array from v; parent[v] the BFS
	// parent-edge array. Built eagerly: O(n(n+m)).
	hopDist [][]int
	parent  [][]int
	// feasible[(u,v)] caches the feasible intermediate sets; guarded by
	// mu (routers are sampled from concurrently).
	mu       sync.Mutex
	feasible map[[2]int][]int
}

// NewHopConstrained builds the router with the given hop budget. Pairs whose
// hop distance already exceeds the budget have no feasible path and error at
// routing time.
func NewHopConstrained(g *graph.Graph, budget int) (*HopConstrained, error) {
	if budget < 1 {
		return nil, fmt.Errorf("oblivious: hop budget must be >= 1")
	}
	n := g.NumVertices()
	r := &HopConstrained{
		g:        g,
		budget:   budget,
		hopDist:  make([][]int, n),
		parent:   make([][]int, n),
		feasible: make(map[[2]int][]int),
	}
	for v := 0; v < n; v++ {
		r.hopDist[v], r.parent[v] = g.BFS(v)
	}
	return r, nil
}

// Graph implements Router.
func (r *HopConstrained) Graph() *graph.Graph { return r.g }

// Budget returns the hop budget h.
func (r *HopConstrained) Budget() int { return r.budget }

// intermediates returns the feasible intermediate vertices for (u,v).
func (r *HopConstrained) intermediates(u, v int) ([]int, error) {
	u, v, _ = normalizePair(u, v)
	key := [2]int{u, v}
	r.mu.Lock()
	defer r.mu.Unlock()
	if ws, ok := r.feasible[key]; ok {
		if ws == nil {
			return nil, graph.ErrNoPath
		}
		return ws, nil
	}
	du := r.hopDist[u]
	dv := r.hopDist[v]
	var ws []int
	for w := 0; w < r.g.NumVertices(); w++ {
		if du[w] >= 0 && dv[w] >= 0 && du[w]+dv[w] <= r.budget {
			ws = append(ws, w)
		}
	}
	r.feasible[key] = ws
	if ws == nil {
		return nil, graph.ErrNoPath
	}
	return ws, nil
}

// bfsPath extracts the deterministic BFS shortest path from src to dst.
func (r *HopConstrained) bfsPath(src, dst int) (graph.Path, error) {
	var ids []int
	cur := dst
	for cur != src {
		id := r.parent[src][cur]
		if id < 0 {
			return graph.Path{}, graph.ErrNoPath
		}
		ids = append(ids, id)
		cur = r.g.Edge(id).Other(cur)
	}
	for i, j := 0, len(ids)-1; i < j; i, j = i+1, j-1 {
		ids[i], ids[j] = ids[j], ids[i]
	}
	return graph.Path{Src: src, Dst: dst, EdgeIDs: ids}, nil
}

// ViaIntermediate routes u -> w -> v along hop-shortest paths, simplified.
// The deterministic variant (used by Distribution) follows BFS parent trees.
func (r *HopConstrained) ViaIntermediate(u, v, w int) (graph.Path, error) {
	first, err := r.bfsPath(u, w)
	if err != nil {
		return graph.Path{}, err
	}
	second, err := r.bfsPath(w, v)
	if err != nil {
		return graph.Path{}, err
	}
	joined, err := graph.Concat(first, second)
	if err != nil {
		return graph.Path{}, err
	}
	return graph.Simplify(r.g, joined)
}

// randomShortestPath samples a uniformly-random-step path through the
// shortest-path DAG from src to dst: walking back from dst, each step picks
// a random in-neighbor one hop closer to src. Hop length equals the BFS
// distance, so hop budgets are preserved while path diversity increases —
// without it, deterministic BFS trees would funnel every sample over the
// same bottleneck edges (defeating the spreading that makes the base
// routing competitive).
func (r *HopConstrained) randomShortestPath(src, dst int, rng *rand.Rand) (graph.Path, error) {
	if src == dst {
		return graph.Path{Src: src, Dst: dst}, nil
	}
	dist := r.hopDist[src]
	if dist[dst] < 0 {
		return graph.Path{}, graph.ErrNoPath
	}
	var ids []int
	cur := dst
	for cur != src {
		var options []int
		for _, id := range r.g.Incident(cur) {
			prev := r.g.Edge(id).Other(cur)
			if dist[prev] == dist[cur]-1 {
				options = append(options, id)
			}
		}
		if len(options) == 0 {
			return graph.Path{}, graph.ErrNoPath
		}
		id := options[rng.IntN(len(options))]
		ids = append(ids, id)
		cur = r.g.Edge(id).Other(cur)
	}
	for i, j := 0, len(ids)-1; i < j; i, j = i+1, j-1 {
		ids[i], ids[j] = ids[j], ids[i]
	}
	return graph.Path{Src: src, Dst: dst, EdgeIDs: ids}, nil
}

// Sample implements Router: a uniformly random feasible intermediate, with
// each leg drawn from the shortest-path DAG at random.
func (r *HopConstrained) Sample(u, v int, rng *rand.Rand) (graph.Path, error) {
	if u == v {
		return graph.Path{Src: u, Dst: v}, nil
	}
	ws, err := r.intermediates(u, v)
	if err != nil {
		return graph.Path{}, fmt.Errorf("oblivious: no %d-hop route for (%d,%d): %w", r.budget, u, v, err)
	}
	w := ws[rng.IntN(len(ws))]
	first, err := r.randomShortestPath(u, w, rng)
	if err != nil {
		return graph.Path{}, err
	}
	second, err := r.randomShortestPath(w, v, rng)
	if err != nil {
		return graph.Path{}, err
	}
	joined, err := graph.Concat(first, second)
	if err != nil {
		return graph.Path{}, err
	}
	return graph.Simplify(r.g, joined)
}

// Distribution implements Router: uniform over feasible intermediates, with
// identical paths merged. Cost O(n · budget) per pair.
func (r *HopConstrained) Distribution(u, v int) ([]flow.WeightedPath, error) {
	if u == v {
		return []flow.WeightedPath{{Path: graph.Path{Src: u, Dst: v}, Weight: 1}}, nil
	}
	ws, err := r.intermediates(u, v)
	if err != nil {
		return nil, fmt.Errorf("oblivious: no %d-hop route for (%d,%d): %w", r.budget, u, v, err)
	}
	byKey := make(map[string]int)
	var out []flow.WeightedPath
	wgt := 1.0 / float64(len(ws))
	for _, w := range ws {
		p, err := r.ViaIntermediate(u, v, w)
		if err != nil {
			return nil, err
		}
		k := p.Key()
		if idx, ok := byKey[k]; ok {
			out[idx].Weight += wgt
		} else {
			byKey[k] = len(out)
			out = append(out, flow.WeightedPath{Path: p, Weight: wgt})
		}
	}
	return out, nil
}

// RandomDetour is the naive general-graph Valiant analogue used as an
// ablation sampler: a uniformly random intermediate with no hop budget at
// all. Sampling candidate paths from it (instead of Raecke) shows how much
// the base oblivious routing's quality matters (experiment E8).
type RandomDetour struct {
	inner *HopConstrained
}

// NewRandomDetour builds the router; the hop budget is set to twice the
// graph's diameter, which never excludes any intermediate.
func NewRandomDetour(g *graph.Graph) (*RandomDetour, error) {
	inner, err := NewHopConstrained(g, 2*g.HopDiameter()+1)
	if err != nil {
		return nil, err
	}
	return &RandomDetour{inner: inner}, nil
}

// Graph implements Router.
func (r *RandomDetour) Graph() *graph.Graph { return r.inner.g }

// Sample implements Router.
func (r *RandomDetour) Sample(u, v int, rng *rand.Rand) (graph.Path, error) {
	return r.inner.Sample(u, v, rng)
}

// Distribution implements Router.
func (r *RandomDetour) Distribution(u, v int) ([]flow.WeightedPath, error) {
	return r.inner.Distribution(u, v)
}
