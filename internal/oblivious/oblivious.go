// Package oblivious implements oblivious routings: demand-independent
// distributions over paths for every vertex pair (Section 4 of the paper).
//
// The paper's semi-oblivious construction (Definition 5.2) samples a few
// paths per pair from any competitive oblivious routing; this package
// provides the samplers:
//
//   - Raecke: a congestion-adaptive mixture of FRT decomposition trees, the
//     practical stand-in for Räcke's O(log n)-competitive routing (the same
//     construction SMORE uses);
//   - Valiant: the classical hypercube routing through a uniformly random
//     intermediate vertex, and the deterministic greedy bit-fixing baseline
//     whose Ω(sqrt(N)/d) worst case motivates the whole paper;
//   - HopConstrained: a Valiant-style hop-budgeted family substituting for
//     the hop-constrained oblivious routings of GHZ21 (completion time);
//   - SPF / KSP / RandomDetour: traffic-engineering baselines and ablation
//     samplers.
package oblivious

import (
	"fmt"
	"math/rand/v2"

	"sparseroute/internal/demand"
	"sparseroute/internal/flow"
	"sparseroute/internal/graph"
)

// Router is an oblivious routing: for each vertex pair it fixes a
// distribution over simple u-v paths, independent of any demand.
type Router interface {
	// Graph returns the graph the router routes on.
	Graph() *graph.Graph
	// Sample draws one path from the pair's distribution.
	Sample(u, v int, rng *rand.Rand) (graph.Path, error)
	// Distribution returns the full distribution as weighted paths whose
	// weights sum to 1. Implementations with large supports document their
	// cost; all supports in this package are at most O(n) per pair.
	Distribution(u, v int) ([]flow.WeightedPath, error)
}

// FractionalRouting routes the demand d through r's distributions: each pair
// (u,v) sends d(u,v) split across Distribution(u,v) proportionally. This is
// the routing whose congestion defines "cong(R, d)" for an oblivious routing.
func FractionalRouting(r Router, d *demand.Demand) (flow.Routing, error) {
	out := flow.New()
	for _, p := range d.Support() {
		dist, err := r.Distribution(p.U, p.V)
		if err != nil {
			return nil, fmt.Errorf("oblivious: pair %v: %w", p, err)
		}
		amt := d.Get(p.U, p.V)
		for _, wp := range dist {
			out[p] = append(out[p], flow.WeightedPath{Path: wp.Path, Weight: amt * wp.Weight})
		}
	}
	return out, nil
}

// Congestion returns the maximum relative edge congestion of routing d
// obliviously through r.
func Congestion(r Router, d *demand.Demand) (float64, error) {
	routing, err := FractionalRouting(r, d)
	if err != nil {
		return 0, err
	}
	return routing.MaxCongestion(r.Graph()), nil
}

// SampleMany draws k independent paths for the pair (with replacement),
// exactly the R-sample primitive of Definition 5.2.
func SampleMany(r Router, u, v, k int, rng *rand.Rand) ([]graph.Path, error) {
	out := make([]graph.Path, 0, k)
	for i := 0; i < k; i++ {
		p, err := r.Sample(u, v, rng)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// normalizePair orients (u, v) and reports whether it was swapped; routers
// with direction-independent distributions use it so Sample(u,v) and
// Sample(v,u) agree.
func normalizePair(u, v int) (int, int, bool) {
	if u > v {
		return v, u, true
	}
	return u, v, false
}
