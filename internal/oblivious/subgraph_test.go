package oblivious

import (
	"math/rand/v2"
	"testing"

	"sparseroute/internal/graph/gen"
)

func TestBuildOnSurvivorsRemapsEdgeIDs(t *testing.T) {
	g := gen.Grid(3, 3)
	failed := map[int]bool{0: true, 3: true}
	r, err := BuildOnSurvivors("spf", g, failed, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.Graph() != g {
		t.Fatal("survivor router must report the original graph")
	}
	rng := rand.New(rand.NewPCG(1, 2))
	for u := 0; u < g.NumVertices(); u++ {
		for v := u + 1; v < g.NumVertices(); v++ {
			p, err := r.Sample(u, v, rng)
			if err != nil {
				t.Fatalf("sample (%d,%d): %v", u, v, err)
			}
			// The remapped path validates against the ORIGINAL graph and
			// avoids every failed edge.
			if err := p.Validate(g); err != nil {
				t.Fatalf("sample (%d,%d) invalid on original graph: %v", u, v, err)
			}
			for _, id := range p.EdgeIDs {
				if failed[id] {
					t.Fatalf("sample (%d,%d) uses failed edge %d", u, v, id)
				}
			}
		}
	}
	// Distributions remap too.
	dist, err := r.Distribution(0, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, wp := range dist {
		if err := wp.Path.Validate(g); err != nil {
			t.Fatalf("distribution path invalid: %v", err)
		}
		for _, id := range wp.Path.EdgeIDs {
			if failed[id] {
				t.Fatalf("distribution path uses failed edge %d", id)
			}
		}
	}
}

func TestBuildOnSurvivorsEmptyFailureSetIsPlainBuild(t *testing.T) {
	g := gen.Hypercube(3)
	r, err := BuildOnSurvivors("valiant", g, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.(*survivorRouter); ok {
		t.Fatal("no failures should skip the remapping wrapper")
	}
}

func TestBuildOnSurvivorsStructuredRouterFailsGracefully(t *testing.T) {
	// Valiant requires a hypercube; pruning an edge breaks the structure and
	// the build must error (callers fall back to spf) rather than panic.
	g := gen.Hypercube(3)
	if _, err := BuildOnSurvivors("valiant", g, map[int]bool{0: true}, nil); err == nil {
		t.Fatal("valiant on a pruned hypercube should fail to build")
	}
	if _, err := BuildOnSurvivors("spf", g, map[int]bool{0: true}, nil); err != nil {
		t.Fatalf("spf fallback should build on any survivor graph: %v", err)
	}
}

func TestBuildOnSurvivorsDisconnectedPairErrors(t *testing.T) {
	// Grid(1,3) is the path 0-1-2: removing edge (0,1) isolates vertex 0, so
	// sampling (0,2) must error instead of fabricating a path.
	g := gen.Grid(1, 3)
	r, err := BuildOnSurvivors("spf", g, map[int]bool{0: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(3, 4))
	if _, err := r.Sample(0, 2, rng); err == nil {
		t.Fatal("sampling a disconnected pair should error")
	}
	if p, err := r.Sample(1, 2, rng); err != nil || len(p.EdgeIDs) != 1 {
		t.Fatalf("connected pair should still sample: %v %v", p, err)
	}
}
