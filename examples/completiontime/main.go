// Completion time: minimizing congestion alone can pick long detours that
// delay the last packet. Sampling from hop-constrained oblivious routings at
// geometric hop scales (Lemma 2.8) lets the adaptation trade congestion
// against dilation — and the store-and-forward simulator shows the makespan
// tracking congestion + dilation.
package main

import (
	"fmt"
	"log"

	"sparseroute"
)

func main() {
	g := sparseroute.Grid(6, 6)
	d := sparseroute.RandomPermutationDemand(g.NumVertices(), 10, 5)
	fmt.Printf("6x6 grid, %d packets\n\n", d.SupportSize())

	system, err := sparseroute.SampleForCompletionTime(g, d.Support(), 3, 9)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hop-scale union system: %d paths, max hops %d\n\n", system.TotalPaths(), system.MaxHops())

	// Congestion-only adaptation.
	congOnly, err := system.Adapt(d, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("congestion-only:  congestion %.2f, dilation %d, C+D = %.2f\n",
		congOnly.MaxCongestion(g), congOnly.Dilation(),
		congOnly.MaxCongestion(g)+float64(congOnly.Dilation()))

	// Completion-time adaptation over dilation classes.
	res, err := system.AdaptCompletionTime(d, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("completion-time:  congestion %.2f, dilation %d, C+D = %.2f\n\n",
		res.Congestion, res.Dilation, res.CompletionTime)

	// Packet-level check: integral routing + store-and-forward schedule.
	integral, err := sparseroute.IntegralAdapt(system.RestrictHops(res.Dilation), d, nil, 11)
	if err != nil {
		log.Fatal(err)
	}
	sim, err := sparseroute.SimulatePackets(g, integral, res.Dilation/2+1, 5, 13)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated makespan: %d steps (lower bound max(C,D) = %d)\n",
		sim.Makespan, sim.LowerBound())
}
