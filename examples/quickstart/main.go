// Quickstart: build a graph, sample a sparse semi-oblivious routing from an
// oblivious routing, adapt the rates to a revealed demand, and compare the
// congestion against the offline optimum.
package main

import (
	"fmt"
	"log"

	"sparseroute"
)

func main() {
	// A 6-dimensional hypercube (64 vertices) with Valiant's classical
	// oblivious routing as the base distribution.
	const dim = 6
	g := sparseroute.Hypercube(dim)
	router, err := sparseroute.NewValiantRouter(g, dim)
	if err != nil {
		log.Fatal(err)
	}

	// The demand is revealed only AFTER the path system is fixed. Here we
	// sample 4 paths per pair for all pairs a permutation demand might use.
	d := sparseroute.RandomPermutationDemand(g.NumVertices(), 16, 7)
	system, err := sparseroute.Sample(router, d.Support(), 4, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sampled %d candidate paths (%d per pair) before seeing the demand\n",
		system.TotalPaths(), system.Sparsity())

	// Stage 4: adapt sending rates to the revealed demand.
	routing, err := system.Adapt(d, nil)
	if err != nil {
		log.Fatal(err)
	}
	semi := routing.MaxCongestion(g)

	// Compare with the offline optimum and the base oblivious routing.
	opt, err := sparseroute.OptimalCongestion(g, d, 300)
	if err != nil {
		log.Fatal(err)
	}
	obl, err := sparseroute.ObliviousCongestion(router, d)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("semi-oblivious congestion: %.3f\n", semi)
	fmt.Printf("offline optimum (approx):  %.3f\n", opt)
	fmt.Printf("oblivious (no adaptation): %.3f\n", obl)
	fmt.Printf("competitive ratio:         %.2f\n", semi/opt)
}
