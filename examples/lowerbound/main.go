// Lower bound: the Section 8 adversary, live. On the double-star gadget
// B_{k,p} every s-sparse path system can be attacked: each leaf-to-leaf path
// crosses exactly one of the k middle vertices, so by pigeonhole many pairs'
// candidates concentrate on the same s middle vertices, and a matching among
// those pairs forces congestion |M|/s while the offline optimum spreads the
// same packets over all k middles.
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"sparseroute/internal/core"
	"sparseroute/internal/graph"
	"sparseroute/internal/graph/gen"
	"sparseroute/internal/lowerbound"
)

func main() {
	const k, p, s = 4, 16, 2
	ds := gen.NewDoubleStar(k, p)
	fmt.Printf("B_{%d,%d}: two %d-leaf stars joined through %d middle vertices\n\n", k, p, p, k)

	// The natural oblivious routing on the gadget routes through a random
	// middle vertex; sample s paths per leaf pair from it.
	rng := rand.New(rand.NewPCG(7, 7))
	ps := core.NewPathSystem(ds.G)
	for _, u := range ds.LeftLeaves {
		for _, v := range ds.RightLeaves {
			for i := 0; i < s; i++ {
				mid := ds.Middle[rng.IntN(k)]
				path, err := graph.PathFromVertices(ds.G, []int{u, ds.LeftCenter, mid, ds.RightCenter, v})
				if err != nil {
					log.Fatal(err)
				}
				if err := ps.AddPath(path); err != nil {
					log.Fatal(err)
				}
			}
		}
	}
	fmt.Printf("sampled %d-sparse system (%d paths total)\n", s, ps.TotalPaths())

	adv, err := lowerbound.FindAdversary(ds, ps, s)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("adversary found a matching of %d pairs whose candidates all cross middles %v\n",
		adv.MatchingSize, adv.Subset)
	fmt.Printf("forced semi-oblivious congestion: >= %.1f\n", adv.ForcedCongestion)
	fmt.Printf("offline optimum (round-robin over all %d middles): %.1f\n", k, adv.OptCongestion)
	fmt.Printf("certified competitive-ratio lower bound: %.2f\n\n", adv.RatioLowerBound)

	// Verify by actually adapting.
	routing, err := ps.Adapt(adv.Demand, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("measured adapted congestion: %.2f (>= the certificate, as proven)\n",
		routing.MaxCongestion(ds.G))
}
