// Traffic engineering: the SMORE deployment story. Installing forwarding
// paths is slow (do it once, obliviously); updating sending rates is fast
// (do it every traffic epoch). This example runs a synthetic WAN through a
// sequence of gravity traffic matrices and compares semi-oblivious routing
// with 4 sampled Räcke paths per pair against SPF and the per-epoch optimum.
package main

import (
	"fmt"
	"log"

	"sparseroute"
)

func main() {
	g := sparseroute.SyntheticWAN(24, 36, 1)
	fmt.Printf("synthetic WAN: %d routers, %d links\n", g.NumVertices(), g.NumEdges())

	// Offline phase: build the oblivious routing and install 4 candidate
	// paths per pair — before any traffic is known.
	raecke, err := sparseroute.NewRaeckeRouter(g, 10, 2)
	if err != nil {
		log.Fatal(err)
	}
	pairs := sparseroute.AllPairs(g.NumVertices())
	system, err := sparseroute.Sample(raecke, pairs, 4, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("installed %d candidate paths (sparsity %d)\n\n", system.TotalPaths(), system.Sparsity())

	spf := sparseroute.NewSPFRouter(g)
	fmt.Printf("%-7s %12s %10s %10s %14s\n", "epoch", "semiobl-4", "spf", "opt", "semiobl/opt")
	for epoch := 0; epoch < 5; epoch++ {
		d := sparseroute.GravityDemand(g, 24, 20, uint64(100+epoch))

		adapted, err := system.Adapt(d, nil)
		if err != nil {
			log.Fatal(err)
		}
		semi := adapted.MaxCongestion(g)

		spfCong, err := sparseroute.ObliviousCongestion(spf, d)
		if err != nil {
			log.Fatal(err)
		}
		opt, err := sparseroute.OptimalCongestion(g, d, 300)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-7d %12.3f %10.3f %10.3f %14.2f\n", epoch, semi, spfCong, opt, semi/opt)
	}
	fmt.Println("\nrates were re-optimized every epoch; the installed paths never changed.")
}
