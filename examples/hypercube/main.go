// Hypercube separation: the paper's motivating example. Deterministic
// greedy bit-fixing (one fixed path per pair) melts down on the transpose
// permutation, while deterministically fixing a FEW paths sampled from
// Valiant's routing — and adapting rates afterwards — stays near-optimal.
// This is experiment E3 as a narrative.
package main

import (
	"fmt"
	"log"

	"sparseroute"
	"sparseroute/internal/oblivious"
)

func main() {
	const dim = 6 // 64 vertices, transpose congests sqrt(64)=8 on one edge
	g := sparseroute.Hypercube(dim)
	d := sparseroute.TransposeDemand(dim)
	fmt.Printf("transpose permutation on the %d-cube: %d packets\n", dim, d.SupportSize())

	opt, err := sparseroute.OptimalCongestion(g, d, 400)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("offline optimal congestion ~ %.2f\n\n", opt)

	// Deterministic single-path routing: greedy bit-fixing.
	greedy, err := oblivious.NewGreedyBitFix(g, dim)
	if err != nil {
		log.Fatal(err)
	}
	gc, err := sparseroute.ObliviousCongestion(greedy, d)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("greedy bit-fixing (1 deterministic path): congestion %.1f (%.1fx OPT)\n", gc, gc/opt)

	// The paper's fix: a few sampled paths + rate adaptation.
	router, err := sparseroute.NewValiantRouter(g, dim)
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range []int{1, 2, 4, 8} {
		system, err := sparseroute.Sample(router, d.Support(), s, 42)
		if err != nil {
			log.Fatal(err)
		}
		routing, err := system.Adapt(d, nil)
		if err != nil {
			log.Fatal(err)
		}
		c := routing.MaxCongestion(g)
		fmt.Printf("sampled s=%d paths + adaptation:          congestion %.2f (%.2fx OPT)\n", s, c, c/opt)
	}
	fmt.Println("\neach extra sampled path buys a polynomial improvement (Theorem 2.5).")
}
