// Package sparseroute is a Go implementation of sparse semi-oblivious
// routing: the "few random paths suffice" construction that fixes a handful
// of candidate paths per vertex pair — sampled from a competitive oblivious
// routing before any traffic is known — and then optimizes only the sending
// rates once the demand is revealed.
//
// The package is the public facade over the internal subsystems:
//
//   - graphs and topology generators (hypercube, grid, torus, expanders,
//     fat-trees, synthetic WANs, the paper's lower-bound gadgets);
//   - oblivious routings to sample from (Räcke-style FRT-tree mixtures,
//     Valiant's hypercube trick, hop-constrained routings, and SPF/KSP
//     baselines);
//   - the sampling constructions (R-sample, (R+λ)-sample, hop-scale union);
//   - the adaptation step (exact LP or multiplicative-weights), fractional
//     and integral (randomized rounding + local search), cancelable through
//     a context (PathSystem.AdaptCtx and friends);
//   - evaluation against the offline optimum, packet-level makespan
//     simulation, and a traffic-engineering scenario runner;
//   - the online serving engine (resident path system, per-epoch rate
//     adaptation, topology events with recovery resampling and degraded-mode
//     health — see Engine and cmd/routed).
//
// # Quick start
//
//	g := sparseroute.Hypercube(6)
//	router, _ := sparseroute.NewValiantRouter(g, 6)
//	demand := sparseroute.RandomPermutationDemand(g.NumVertices(), 16, 1)
//	system, _ := sparseroute.Sample(router, demand.Support(), 4, 1)
//	routing, _ := system.Adapt(demand, nil)
//	fmt.Println("congestion:", routing.MaxCongestion(g))
//
// See examples/ for runnable programs and DESIGN.md for the system
// inventory and the experiment index.
package sparseroute

import (
	"math/rand/v2"

	"sparseroute/internal/adversary"
	"sparseroute/internal/core"
	"sparseroute/internal/demand"
	"sparseroute/internal/flow"
	"sparseroute/internal/graph"
	"sparseroute/internal/graph/gen"
	"sparseroute/internal/maxflow"
	"sparseroute/internal/mcf"
	"sparseroute/internal/oblivious"
	"sparseroute/internal/schedule"
	"sparseroute/internal/service"
	"sparseroute/internal/temodel"
)

// Core types, re-exported. The methods documented on the internal types are
// part of the public API surface.
type (
	// Graph is an undirected capacitated multigraph.
	Graph = graph.Graph
	// Path is a routing path identified by its edge sequence.
	Path = graph.Path
	// Pair is an unordered vertex pair.
	Pair = demand.Pair
	// Demand is a demand matrix (Definition 2.2 of the paper).
	Demand = demand.Demand
	// Routing assigns weighted paths to demand pairs.
	Routing = flow.Routing
	// WeightedPath is a path carrying flow.
	WeightedPath = flow.WeightedPath
	// PathSystem is a semi-oblivious routing: candidate paths per pair
	// (Definition 2.1).
	PathSystem = core.PathSystem
	// AdaptOptions tunes the rate-adaptation (Stage 4) solvers.
	AdaptOptions = core.AdaptOptions
	// CompletionResult reports completion-time adaptation.
	CompletionResult = core.CompletionResult
	// Report compares semi-oblivious congestion to OPT and the base
	// oblivious routing.
	Report = core.Report
	// EvalOptions controls Evaluate.
	EvalOptions = core.EvalOptions
	// Router is an oblivious routing: a fixed distribution over paths per
	// vertex pair, independent of demands.
	Router = oblivious.Router
	// ScheduleResult reports a store-and-forward packet simulation.
	ScheduleResult = schedule.Result
	// TEMethod is one routing method in the traffic-engineering runner.
	TEMethod = temodel.Method
	// Engine is the online routing engine: path system resident, demands
	// adapted per epoch, reads lock-free (see cmd/routed for the daemon).
	Engine = service.Engine
	// EngineConfig parameterizes NewEngine.
	EngineConfig = service.Config
	// EngineState is one published epoch of an Engine.
	EngineState = service.State
	// EngineOutcome reports how one submitted epoch ended (Engine.Wait).
	EngineOutcome = service.Outcome
	// EngineHealth is the engine's liveness/readiness report: ok, degraded
	// (with failed/capacity-degraded edges and uncovered pairs), or closed
	// (Engine.Health).
	EngineHealth = service.Health
	// LinkUpdate reports one applied topology event (Engine.FailEdges,
	// RestoreEdges, SetLinkState, SetCapacity, or Links for the current
	// state).
	LinkUpdate = service.LinkUpdate
	// EdgeCapacity reports one degraded-but-alive edge: its ID and effective-
	// capacity multiplier in (0,1) (Engine.SetCapacity, EngineHealth).
	EdgeCapacity = service.EdgeCapacity
)

// Engine health states (EngineHealth.Status).
const (
	// EngineHealthOK: serving with the full installed path system.
	EngineHealthOK = service.HealthOK
	// EngineHealthDegraded: serving over survivors of a failed-edge set.
	EngineHealthDegraded = service.HealthDegraded
	// EngineHealthClosed: the engine no longer accepts work.
	EngineHealthClosed = service.HealthClosed
)

// Engine errors, re-exported for errors.Is checks through the facade.
var (
	// ErrEngineBusy: the epoch queue is full (load shedding); retry later.
	ErrEngineBusy = service.ErrBusy
	// ErrEngineClosed: SubmitDemand after Close.
	ErrEngineClosed = service.ErrClosed
	// ErrUnknownEpoch: Wait on an epoch that was never assigned or whose
	// outcome was already evicted from the bounded history.
	ErrUnknownEpoch = service.ErrUnknownEpoch
	// ErrUnknownEdge: a link-state event named an edge ID outside the
	// topology.
	ErrUnknownEdge = service.ErrUnknownEdge
	// ErrBadCapacity: a capacity event carried a negative or non-finite
	// multiplier.
	ErrBadCapacity = service.ErrBadCapacity
)

// --- Topologies -----------------------------------------------------------

// NewGraph returns an empty graph on n vertices.
func NewGraph(n int) *Graph { return graph.New(n) }

// Hypercube returns the d-dimensional hypercube.
func Hypercube(d int) *Graph { return gen.Hypercube(d) }

// Grid returns the rows x cols grid.
func Grid(rows, cols int) *Graph { return gen.Grid(rows, cols) }

// Torus returns the rows x cols torus.
func Torus(rows, cols int) *Graph { return gen.Torus(rows, cols) }

// Expander returns a random deg-regular graph (an expander w.h.p.).
func Expander(n, deg int, seed uint64) *Graph {
	return gen.RandomRegular(n, deg, rand.New(rand.NewPCG(seed, 0xe)))
}

// FatTree returns a k-ary fat-tree and its edge-switch vertex IDs.
func FatTree(k int) (*Graph, []int) { return gen.FatTree(k) }

// SyntheticWAN returns a heterogeneous wide-area-network-like topology.
func SyntheticWAN(n, extraEdges int, seed uint64) *Graph {
	return gen.SyntheticWAN(n, extraEdges, rand.New(rand.NewPCG(seed, 0x17)))
}

// --- Demands ---------------------------------------------------------------

// NewDemand returns an empty demand matrix.
func NewDemand() *Demand { return demand.New() }

// RandomPermutationDemand pairs 2*pairs distinct vertices at random.
func RandomPermutationDemand(n, pairs int, seed uint64) *Demand {
	return demand.RandomPermutation(n, pairs, rand.New(rand.NewPCG(seed, 0xd)))
}

// TransposeDemand is the hypercube transpose permutation (dim even).
func TransposeDemand(dim int) *Demand { return demand.Transpose(dim) }

// BitReversalDemand is the hypercube bit-reversal permutation.
func BitReversalDemand(dim int) *Demand { return demand.BitReversal(dim) }

// GravityDemand is a gravity-model traffic matrix over the heaviest pairs.
func GravityDemand(g *Graph, total float64, pairs int, seed uint64) *Demand {
	return demand.Gravity(g, total, pairs, rand.New(rand.NewPCG(seed, 0x9)))
}

// AllPairs enumerates every unordered vertex pair of an n-vertex graph.
func AllPairs(n int) []Pair { return core.AllPairs(n) }

// --- Oblivious routings ------------------------------------------------ ---

// NewRaeckeRouter builds the Räcke-style oblivious routing: a congestion-
// adaptive mixture of `trees` FRT decomposition trees.
func NewRaeckeRouter(g *Graph, trees int, seed uint64) (Router, error) {
	return oblivious.NewRaecke(g, &oblivious.RaeckeOptions{NumTrees: trees},
		rand.New(rand.NewPCG(seed, 0xa)))
}

// NewValiantRouter builds Valiant's randomized hypercube routing.
func NewValiantRouter(g *Graph, dim int) (Router, error) {
	return oblivious.NewValiant(g, dim)
}

// NewSPFRouter builds deterministic shortest-path-first routing.
func NewSPFRouter(g *Graph) Router { return oblivious.NewSPF(g) }

// NewKSPRouter builds k-shortest-paths (ECMP-style) routing.
func NewKSPRouter(g *Graph, k int) Router { return oblivious.NewKSP(g, k, nil) }

// NewHopConstrainedRouter builds the hop-budgeted oblivious routing used by
// the completion-time construction.
func NewHopConstrainedRouter(g *Graph, budget int) (Router, error) {
	return oblivious.NewHopConstrained(g, budget)
}

// ObliviousCongestion routes d fractionally through r and returns the
// maximum relative edge congestion.
func ObliviousCongestion(r Router, d *Demand) (float64, error) {
	return oblivious.Congestion(r, d)
}

// --- The paper's construction ----------------------------------------------

// Sample draws R paths per pair from the oblivious routing (the R-sample of
// Definition 5.2). Fix the seed to reproduce a system.
func Sample(r Router, pairs []Pair, R int, seed uint64) (*PathSystem, error) {
	return core.RSample(r, pairs, R, seed)
}

// SampleWithCuts draws R + λ(u,v) paths per pair (λ = min cut), required for
// competitiveness on arbitrary non-unit demands (Lemma 2.7). maxLambda caps
// λ; 0 means uncapped.
func SampleWithCuts(r Router, pairs []Pair, R, maxLambda int, seed uint64) (*PathSystem, error) {
	return core.RPlusLambdaSample(r, pairs, R, maxLambda, seed)
}

// SampleForCompletionTime builds the hop-scale union system of Lemma 2.8,
// enabling completion-time-competitive adaptation.
func SampleForCompletionTime(g *Graph, pairs []Pair, R int, seed uint64) (*PathSystem, error) {
	return core.CompletionTimeSample(g, pairs, R, seed)
}

// SampleForCompletionTimeWithCuts combines the hop-scale union with
// cut-proportional sparsity (R + λ(u,v) per scale), for non-unit demands.
func SampleForCompletionTimeWithCuts(g *Graph, pairs []Pair, R, maxLambda int, seed uint64) (*PathSystem, error) {
	return core.CompletionTimeSampleWithCuts(g, pairs, R, maxLambda, seed)
}

// NewPathSystem returns an empty path system for hand-built candidates.
func NewPathSystem(g *Graph) *PathSystem { return core.NewPathSystem(g) }

// --- Evaluation --------------------------------------------------------- --

// Evaluate measures ps's competitive ratio on d against the (approximate)
// offline optimum and, when base is non-nil, against the base oblivious
// routing.
func Evaluate(ps *PathSystem, base Router, d *Demand, opt *EvalOptions) (*Report, error) {
	return core.Evaluate(ps, base, d, opt)
}

// OptimalCongestion approximates the offline optimal congestion OPT(d) with
// the multiplicative-weights solver (iterations 0 uses the default).
func OptimalCongestion(g *Graph, d *Demand, iterations int) (float64, error) {
	r, err := mcf.ApproxOptCongestion(g, d, &mcf.Options{Iterations: iterations})
	if err != nil {
		return 0, err
	}
	return r.MaxCongestion(g), nil
}

// OptimalCongestionInterval returns a certified interval [lower, upper]
// provably containing OPT(d): the upper end is an achieved routing's
// congestion, the lower end an LP-duality certificate.
func OptimalCongestionInterval(g *Graph, d *Demand, iterations int) (lower, upper float64, err error) {
	cert, err := mcf.ApproxOptWithCertificate(g, d, &mcf.Options{Iterations: iterations})
	if err != nil {
		return 0, 0, err
	}
	return cert.Lower, cert.Upper, nil
}

// MinCut returns λ(u,v), the minimum u-v cut value.
func MinCut(g *Graph, u, v int) float64 { return maxflow.Lambda(g, u, v) }

// SimulatePackets runs the store-and-forward scheduler on an integral
// routing, returning makespan, congestion and dilation.
func SimulatePackets(g *Graph, r Routing, maxDelay, trials int, seed uint64) (*ScheduleResult, error) {
	return schedule.SimulateBest(g, r, maxDelay, trials, rand.New(rand.NewPCG(seed, 0x5)))
}

// IntegralAdapt rounds ps's fractional adaptation of the integral demand d
// to single paths per packet (Lemma 6.3 + local search).
func IntegralAdapt(ps *PathSystem, d *Demand, opt *AdaptOptions, seed uint64) (Routing, error) {
	return ps.AdaptIntegral(d, opt, rand.New(rand.NewPCG(seed, 0x6)))
}

// --- Serving ----------------------------------------------------------------

// NewEngine builds the online routing engine: it samples the path system at
// startup (or serves cfg.System as restored from a snapshot) and then adapts
// sending rates per submitted demand epoch on a bounded worker pool. Close
// it to drain. The HTTP daemon around it lives in cmd/routed.
func NewEngine(cfg EngineConfig) (*Engine, error) { return service.New(cfg) }

// WorstDemandSearch hill-climbs for a permutation demand the system routes
// badly, returning the demand and its competitive ratio. The system must
// cover all pairs (sample over AllPairs). A bounded-budget adversary that
// fails to find bad demands is empirical evidence for the all-demands
// guarantee of the sampling theorem.
func WorstDemandSearch(ps *PathSystem, pairsPerDemand, steps, restarts int, seed uint64) (*Demand, float64, error) {
	res, err := adversary.Search(ps, &adversary.Options{
		Pairs:    pairsPerDemand,
		Steps:    steps,
		Restarts: restarts,
	}, rand.New(rand.NewPCG(seed, 0x7)))
	if err != nil {
		return nil, 0, err
	}
	return res.Demand, res.Ratio, nil
}
