// Command benchtrend compares two BENCH_engine.json artifacts — the
// committed baseline and a freshly generated run — and fails when the
// per-epoch solve latency regressed beyond a threshold on any topology the
// two runs share. It is the first consumer of the benchmark trajectory: CI
// regenerates the quick-mode artifact on every change and this gate turns a
// silent slow-down of the serving loop into a red build.
//
//	benchtrend -old BENCH_engine.json -new /tmp/bench/BENCH_engine.json
//
// The comparison is mean solve latency per topology, new/old. Sub-floor
// baselines (default 0.05ms) are skipped: at microsecond scale the ratio is
// all noise. Topologies present in only one artifact are reported but never
// fail the gate, so adding or retiring a benchmark case is not a regression.
// -threshold sets the allowed relative increase (0.25 = fail beyond +25%);
// CI machines vary enough run-to-run that thresholds below ~0.5 belong on
// dedicated hardware only.
//
// The warm-start pipeline is gated absolutely, on the new artifact alone:
// each topology that carries warm-vs-cold measurements must keep its
// warm/cold mean-latency ratio under -warm-ratio-max (the delta fast path
// exists to be cheaper than a cold re-solve) and its worst warm-vs-cold
// congestion gap under -warm-cong-max (incremental epochs must not trade
// away routing quality). Rows without warm measurements — older artifacts,
// or topologies whose warm windows are empty — are skipped, never failed.
//
// -serving gates a BENCH_serving.json written by routedload, absolutely and
// on the fresh artifact alone (overload behavior is a property of the build
// under test, not a trend): reads must never have seen a 5xx or transport
// error, every sent mutation must land in exactly one outcome bucket (the
// accounting identity that proves nothing was silently dropped), every shed
// or busy response must have carried Retry-After, at least one mutation must
// have been accepted, and -read-p99-max optionally bounds the read tail
// under load. -serving composes with or replaces the engine comparison: at
// least one of -new / -serving is required.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

type window struct {
	Count int     `json:"count"`
	Mean  float64 `json:"mean_ms"`
	P50   float64 `json:"p50_ms"`
	P99   float64 `json:"p99_ms"`
	Max   float64 `json:"max_ms"`
}

type topology struct {
	Topology string `json:"topology"`
	Vertices int    `json:"vertices"`
	Edges    int    `json:"edges"`
	Paths    int    `json:"paths"`
	Solve    window `json:"solve"`
	Read     window `json:"read"`
	// Warm-start measurements; zero-valued in artifacts that predate them.
	WarmSolve           window  `json:"warm_solve"`
	ColdResolve         window  `json:"cold_resolve"`
	WarmColdRatio       float64 `json:"warm_cold_ratio"`
	WarmCongestionDelta float64 `json:"warm_congestion_delta"`
	DeltaEpochs         int     `json:"delta_epochs"`
}

type report struct {
	Name       string     `json:"name"`
	Topologies []topology `json:"topologies"`
}

func load(path string) (*report, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r report
	if err := json.Unmarshal(raw, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(r.Topologies) == 0 {
		return nil, fmt.Errorf("%s: no topologies in artifact", path)
	}
	return &r, nil
}

// verdict is one topology's comparison row.
type verdict struct {
	topo     string
	oldMean  float64
	newMean  float64
	ratio    float64
	skipped  string // non-empty: why the row cannot fail the gate
	regressd bool
}

// compare builds the per-topology verdicts for the topologies both runs
// share. threshold is the allowed relative increase; floorMS exempts
// baselines too fast to compare meaningfully.
func compare(oldR, newR *report, threshold, floorMS float64) []verdict {
	baseline := make(map[string]topology, len(oldR.Topologies))
	for _, tp := range oldR.Topologies {
		baseline[tp.Topology] = tp
	}
	var out []verdict
	for _, tp := range newR.Topologies {
		base, ok := baseline[tp.Topology]
		if !ok {
			out = append(out, verdict{topo: tp.Topology, newMean: tp.Solve.Mean, skipped: "no baseline"})
			continue
		}
		v := verdict{topo: tp.Topology, oldMean: base.Solve.Mean, newMean: tp.Solve.Mean}
		switch {
		case base.Solve.Count == 0 || tp.Solve.Count == 0:
			v.skipped = "empty solve window"
		case base.Solve.Mean < floorMS:
			v.skipped = fmt.Sprintf("baseline under floor %gms", floorMS)
		default:
			v.ratio = tp.Solve.Mean / base.Solve.Mean
			v.regressd = v.ratio > 1+threshold
		}
		out = append(out, v)
	}
	return out
}

// warmVerdict is one topology's warm-start gate row. Unlike the latency
// trend, the warm gate is absolute and needs only the new artifact: the
// warm/cold ratio and congestion gap are self-relative measurements.
type warmVerdict struct {
	topo    string
	ratio   float64
	congGap float64
	deltas  int
	skipped string // non-empty: why the row cannot fail the gate
	slow    bool   // warm solves not cheap enough vs cold
	lossy   bool   // warm congestion too far from cold
}

// gateWarm builds the warm-start verdicts for newR. Topologies without warm
// measurements (old artifacts, or empty warm windows) are skipped.
func gateWarm(newR *report, ratioMax, congMax float64) []warmVerdict {
	var out []warmVerdict
	for _, tp := range newR.Topologies {
		v := warmVerdict{topo: tp.Topology, ratio: tp.WarmColdRatio, congGap: tp.WarmCongestionDelta, deltas: tp.DeltaEpochs}
		if tp.WarmSolve.Count == 0 || tp.ColdResolve.Count == 0 {
			v.skipped = "no warm measurements"
		} else {
			v.slow = ratioMax > 0 && v.ratio > ratioMax
			v.lossy = congMax > 0 && v.congGap > congMax
		}
		out = append(out, v)
	}
	return out
}

// servingReport mirrors the BENCH_serving.json fields the gate reads;
// unknown fields in the artifact are ignored.
type servingReport struct {
	Name        string  `json:"name"`
	AchievedQPS float64 `json:"achieved_qps"`
	Mutations   struct {
		Sent              int64 `json:"sent"`
		OK                int64 `json:"ok"`
		Shed              int64 `json:"shed"`
		Busy              int64 `json:"busy"`
		TooLarge          int64 `json:"too_large"`
		MissingRetryAfter int64 `json:"missing_retry_after"`
		ClientErrors      int64 `json:"client_errors"`
		ServerErrors      int64 `json:"server_errors"`
		TransportErrors   int64 `json:"transport_errors"`
	} `json:"mutations"`
	Reads struct {
		Sent            int64  `json:"sent"`
		OK              int64  `json:"ok"`
		ServerErrors    int64  `json:"server_errors"`
		TransportErrors int64  `json:"transport_errors"`
		Latency         window `json:"latency"`
	} `json:"reads"`
}

func loadServing(path string) (*servingReport, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r servingReport
	if err := json.Unmarshal(raw, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if r.Mutations.Sent == 0 && r.Reads.Sent == 0 {
		return nil, fmt.Errorf("%s: empty serving artifact (no traffic recorded)", path)
	}
	return &r, nil
}

// gateServing checks the absolute overload invariants on one serving
// artifact and returns the violations; an empty slice passes.
func gateServing(r *servingReport, readP99Max float64) []string {
	var bad []string
	if r.Reads.ServerErrors > 0 {
		bad = append(bad, fmt.Sprintf("reads saw %d server errors (5xx); the read path must never shed", r.Reads.ServerErrors))
	}
	if r.Reads.TransportErrors > 0 {
		bad = append(bad, fmt.Sprintf("reads saw %d transport errors; the daemon dropped connections under load", r.Reads.TransportErrors))
	}
	m := r.Mutations
	accounted := m.OK + m.Shed + m.Busy + m.TooLarge + m.ClientErrors + m.ServerErrors + m.TransportErrors
	if m.Sent != accounted {
		bad = append(bad, fmt.Sprintf("mutation accounting incomplete: sent %d but only %d land in an outcome bucket", m.Sent, accounted))
	}
	if m.MissingRetryAfter > 0 {
		bad = append(bad, fmt.Sprintf("%d shed/busy responses lacked Retry-After", m.MissingRetryAfter))
	}
	if m.ServerErrors > 0 {
		bad = append(bad, fmt.Sprintf("mutations saw %d non-503 server errors; overload must shed, not crash", m.ServerErrors))
	}
	if m.Sent > 0 && m.OK == 0 {
		bad = append(bad, "no mutation was ever accepted: the daemon shed everything, not excess")
	}
	if readP99Max > 0 && r.Reads.Latency.P99 > readP99Max {
		bad = append(bad, fmt.Sprintf("read p99 %.2fms exceeds -read-p99-max %.2fms", r.Reads.Latency.P99, readP99Max))
	}
	return bad
}

func main() {
	var (
		oldPath      = flag.String("old", "BENCH_engine.json", "baseline artifact (the committed one)")
		newPath      = flag.String("new", "", "fresh artifact to compare against the baseline")
		threshold    = flag.Float64("threshold", 0.25, "allowed relative solve-latency increase before failing (0.25 = +25%)")
		floorMS      = flag.Float64("floor-ms", 0.05, "skip topologies whose baseline mean solve is below this many ms (too fast to compare)")
		warmRatioMax = flag.Float64("warm-ratio-max", 0.75, "fail when a topology's warm/cold mean solve-latency ratio exceeds this (0 disables)")
		warmCongMax  = flag.Float64("warm-cong-max", 0.02, "fail when a topology's worst warm-vs-cold congestion gap exceeds this (0 disables)")
		servingPath  = flag.String("serving", "", "BENCH_serving.json from a routedload run to gate absolutely (overload invariants)")
		readP99Max   = flag.Float64("read-p99-max", 0, "fail when the serving artifact's read p99 exceeds this many ms (0 disables)")
	)
	flag.Parse()
	if *newPath == "" && *servingPath == "" {
		fmt.Fprintln(os.Stderr, "benchtrend: need -new (engine trend) or -serving (overload gate)")
		os.Exit(2)
	}

	servingFailed := false
	if *servingPath != "" {
		sr, err := loadServing(*servingPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchtrend:", err)
			os.Exit(2)
		}
		violations := gateServing(sr, *readP99Max)
		fmt.Printf("benchtrend: serving  mutations sent %d ok %d shed %d busy %d, reads %d (p99 %.2fms), achieved %.1f/s\n",
			sr.Mutations.Sent, sr.Mutations.OK, sr.Mutations.Shed, sr.Mutations.Busy,
			sr.Reads.Sent, sr.Reads.Latency.P99, sr.AchievedQPS)
		for _, v := range violations {
			servingFailed = true
			fmt.Printf("benchtrend: serving  %s  VIOLATION\n", v)
		}
		if !servingFailed {
			fmt.Println("benchtrend: serving  overload invariants hold  ok")
		}
	}
	if *newPath == "" {
		if servingFailed {
			fmt.Fprintln(os.Stderr, "benchtrend: serving overload invariants violated")
			os.Exit(1)
		}
		return
	}

	oldR, err := load(*oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchtrend:", err)
		os.Exit(2)
	}
	newR, err := load(*newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchtrend:", err)
		os.Exit(2)
	}

	failed := false
	for _, v := range compare(oldR, newR, *threshold, *floorMS) {
		switch {
		case v.skipped != "":
			fmt.Printf("benchtrend: %-14s solve %.4fms -> %.4fms  (skipped: %s)\n", v.topo, v.oldMean, v.newMean, v.skipped)
		case v.regressd:
			failed = true
			fmt.Printf("benchtrend: %-14s solve %.4fms -> %.4fms  (%.0f%% > +%.0f%% budget)  REGRESSION\n",
				v.topo, v.oldMean, v.newMean, (v.ratio-1)*100, *threshold*100)
		default:
			fmt.Printf("benchtrend: %-14s solve %.4fms -> %.4fms  (%+.0f%%)  ok\n",
				v.topo, v.oldMean, v.newMean, (v.ratio-1)*100)
		}
	}
	warmFailed := false
	for _, v := range gateWarm(newR, *warmRatioMax, *warmCongMax) {
		switch {
		case v.skipped != "":
			fmt.Printf("benchtrend: %-14s warm  (skipped: %s)\n", v.topo, v.skipped)
		case v.slow || v.lossy:
			warmFailed = true
			why := ""
			if v.slow {
				why = fmt.Sprintf("ratio %.3f > %.3f", v.ratio, *warmRatioMax)
			}
			if v.lossy {
				if why != "" {
					why += ", "
				}
				why += fmt.Sprintf("cong gap %.4f > %.4f", v.congGap, *warmCongMax)
			}
			fmt.Printf("benchtrend: %-14s warm ratio %.3f, cong gap %.4f, %d delta epochs  (%s)  REGRESSION\n",
				v.topo, v.ratio, v.congGap, v.deltas, why)
		default:
			fmt.Printf("benchtrend: %-14s warm ratio %.3f, cong gap %.4f, %d delta epochs  ok\n",
				v.topo, v.ratio, v.congGap, v.deltas)
		}
	}
	if failed {
		fmt.Fprintln(os.Stderr, "benchtrend: solve latency regressed beyond the budget")
	}
	if warmFailed {
		fmt.Fprintln(os.Stderr, "benchtrend: warm-start pipeline out of budget")
	}
	if servingFailed {
		fmt.Fprintln(os.Stderr, "benchtrend: serving overload invariants violated")
	}
	if failed || warmFailed || servingFailed {
		os.Exit(1)
	}
}
