package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func artifact(t *testing.T, dir, name string, topos []topology) string {
	t.Helper()
	path := filepath.Join(dir, name)
	raw, err := json.Marshal(report{Name: "engine", Topologies: topos})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func topo(name string, mean float64) topology {
	return topology{Topology: name, Solve: window{Count: 8, Mean: mean}}
}

func TestCompareFlagsRegression(t *testing.T) {
	oldR := &report{Topologies: []topology{topo("grid", 1.0), topo("cube", 1.0)}}
	newR := &report{Topologies: []topology{topo("grid", 1.2), topo("cube", 1.3)}}
	vs := compare(oldR, newR, 0.25, 0.05)
	if len(vs) != 2 {
		t.Fatalf("verdicts: %d, want 2", len(vs))
	}
	if vs[0].regressd {
		t.Fatalf("+20%% flagged under a 25%% budget: %+v", vs[0])
	}
	if !vs[1].regressd {
		t.Fatalf("+30%% not flagged under a 25%% budget: %+v", vs[1])
	}
}

func TestCompareSkipsSubFloorAndMissing(t *testing.T) {
	oldR := &report{Topologies: []topology{topo("tiny", 0.01), topo("gone", 1.0)}}
	newR := &report{Topologies: []topology{topo("tiny", 10.0), topo("fresh", 5.0)}}
	vs := compare(oldR, newR, 0.25, 0.05)
	for _, v := range vs {
		if v.regressd {
			t.Fatalf("skipped row flagged as regression: %+v", v)
		}
		if v.skipped == "" {
			t.Fatalf("row %q should be skipped (sub-floor or unmatched)", v.topo)
		}
	}
}

func TestCompareImprovementPasses(t *testing.T) {
	oldR := &report{Topologies: []topology{topo("grid", 2.0)}}
	newR := &report{Topologies: []topology{topo("grid", 1.0)}}
	vs := compare(oldR, newR, 0.25, 0.05)
	if len(vs) != 1 || vs[0].regressd || vs[0].skipped != "" {
		t.Fatalf("improvement misjudged: %+v", vs)
	}
}

func TestLoadRejectsEmptyArtifact(t *testing.T) {
	dir := t.TempDir()
	path := artifact(t, dir, "empty.json", nil)
	if _, err := load(path); err == nil {
		t.Fatal("empty artifact should not load")
	}
	if _, err := load(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing artifact should not load")
	}
}

func warmTopo(name string, ratio, congGap float64) topology {
	tp := topo(name, 1.0)
	tp.WarmSolve = window{Count: 8, Mean: ratio}
	tp.ColdResolve = window{Count: 8, Mean: 1.0}
	tp.WarmColdRatio = ratio
	tp.WarmCongestionDelta = congGap
	tp.DeltaEpochs = 8
	return tp
}

func TestGateWarmFlagsSlowAndLossy(t *testing.T) {
	newR := &report{Topologies: []topology{
		warmTopo("ok", 0.3, 0.005),
		warmTopo("slow", 0.9, 0.005),
		warmTopo("lossy", 0.3, 0.05),
	}}
	vs := gateWarm(newR, 0.75, 0.02)
	if len(vs) != 3 {
		t.Fatalf("verdicts: %d, want 3", len(vs))
	}
	if vs[0].slow || vs[0].lossy || vs[0].skipped != "" {
		t.Fatalf("in-budget row misjudged: %+v", vs[0])
	}
	if !vs[1].slow || vs[1].lossy {
		t.Fatalf("ratio 0.9 not flagged slow under a 0.75 budget: %+v", vs[1])
	}
	if vs[2].slow || !vs[2].lossy {
		t.Fatalf("cong gap 0.05 not flagged lossy under a 0.02 budget: %+v", vs[2])
	}
}

// TestGateWarmSkipsLegacyArtifacts pins backward compatibility: artifacts
// written before the warm-start fields existed decode with empty warm
// windows, and those rows must skip — never fail — the warm gate.
func TestGateWarmSkipsLegacyArtifacts(t *testing.T) {
	newR := &report{Topologies: []topology{topo("legacy", 1.0)}}
	vs := gateWarm(newR, 0.75, 0.02)
	if len(vs) != 1 || vs[0].skipped == "" || vs[0].slow || vs[0].lossy {
		t.Fatalf("legacy row should skip the warm gate: %+v", vs)
	}
}

func TestGateWarmZeroDisables(t *testing.T) {
	newR := &report{Topologies: []topology{warmTopo("wild", 5.0, 0.5)}}
	vs := gateWarm(newR, 0, 0)
	if vs[0].slow || vs[0].lossy {
		t.Fatalf("zero budgets should disable the warm gate: %+v", vs[0])
	}
}

// TestLoadCommittedArtifact pins that the tool parses the real committed
// baseline at the repo root.
func TestLoadCommittedArtifact(t *testing.T) {
	r, err := load("../../BENCH_engine.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Topologies) == 0 || r.Topologies[0].Solve.Count == 0 {
		t.Fatalf("committed artifact parsed hollow: %+v", r)
	}
}

func servingFixture() *servingReport {
	r := &servingReport{Name: "serving", AchievedQPS: 30}
	r.Mutations.Sent = 100
	r.Mutations.OK = 40
	r.Mutations.Shed = 50
	r.Mutations.Busy = 10
	r.Reads.Sent = 500
	r.Reads.OK = 500
	r.Reads.Latency = window{Count: 500, P99: 4.0}
	return r
}

func TestGateServingPasses(t *testing.T) {
	if v := gateServing(servingFixture(), 10); len(v) != 0 {
		t.Fatalf("clean artifact flagged: %v", v)
	}
}

func TestGateServingFlagsReadErrors(t *testing.T) {
	r := servingFixture()
	r.Reads.ServerErrors = 2
	r.Reads.TransportErrors = 1
	if v := gateServing(r, 0); len(v) != 2 {
		t.Fatalf("violations %v, want read 5xx + transport", v)
	}
}

func TestGateServingFlagsAccountingGap(t *testing.T) {
	r := servingFixture()
	r.Mutations.Sent = 101 // one request unaccounted for
	if v := gateServing(r, 0); len(v) != 1 {
		t.Fatalf("violations %v, want accounting gap", v)
	}
}

func TestGateServingFlagsMissingRetryAfter(t *testing.T) {
	r := servingFixture()
	r.Mutations.MissingRetryAfter = 3
	if v := gateServing(r, 0); len(v) != 1 {
		t.Fatalf("violations %v, want missing Retry-After", v)
	}
}

func TestGateServingFlagsTotalShed(t *testing.T) {
	r := servingFixture()
	r.Mutations.OK = 0
	r.Mutations.Shed = 90
	r.Mutations.Busy = 10
	if v := gateServing(r, 0); len(v) != 1 {
		t.Fatalf("violations %v, want all-shed flag", v)
	}
}

func TestGateServingReadP99Budget(t *testing.T) {
	r := servingFixture()
	r.Reads.Latency.P99 = 25
	if v := gateServing(r, 10); len(v) != 1 {
		t.Fatalf("violations %v, want p99 budget", v)
	}
	if v := gateServing(r, 0); len(v) != 0 {
		t.Fatalf("violations %v, p99 gate should be disabled at 0", v)
	}
}

func TestGateServingFlagsMutationServerErrors(t *testing.T) {
	r := servingFixture()
	r.Mutations.OK = 39
	r.Mutations.ServerErrors = 1
	if v := gateServing(r, 0); len(v) != 1 {
		t.Fatalf("violations %v, want mutation 5xx", v)
	}
}

func TestLoadServingRejectsEmpty(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_serving.json")
	if err := os.WriteFile(path, []byte(`{"name":"serving"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadServing(path); err == nil {
		t.Fatal("empty serving artifact accepted")
	}
}
