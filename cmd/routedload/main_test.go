package main

import (
	"encoding/json"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"sparseroute/internal/demand"
	"sparseroute/internal/graph/gen"
)

// TestSendMutationClassification checks that every response class lands in
// exactly one outcome bucket — the accounting identity benchtrend gates.
func TestSendMutationClassification(t *testing.T) {
	var code int
	var retryAfter string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if retryAfter != "" {
			w.Header().Set("Retry-After", retryAfter)
		}
		w.WriteHeader(code)
	}))
	defer ts.Close()
	l := &loader{o: &loadOpts{addr: ts.URL}, client: ts.Client()}

	cases := []struct {
		code  int
		hint  string
		check func() int64
	}{
		{http.StatusAccepted, "", func() int64 { return l.mutations.OK }},
		{http.StatusOK, "", func() int64 { return l.mutations.OK }},
		{http.StatusTooManyRequests, "1", func() int64 { return l.mutations.Shed }},
		{http.StatusServiceUnavailable, "1", func() int64 { return l.mutations.Busy }},
		{http.StatusRequestEntityTooLarge, "", func() int64 { return l.mutations.TooLarge }},
		{http.StatusBadRequest, "", func() int64 { return l.mutations.ClientErrors }},
		{http.StatusInternalServerError, "", func() int64 { return l.mutations.ServerErrors }},
	}
	for _, c := range cases {
		code, retryAfter = c.code, c.hint
		before := c.check()
		l.sendMutation(http.MethodPost, "/v1/demand", []byte(`{}`))
		if c.check() != before+1 {
			t.Fatalf("status %d not counted in its bucket", c.code)
		}
	}
	// A 429 without Retry-After is still shed, but flagged.
	code, retryAfter = http.StatusTooManyRequests, ""
	l.sendMutation(http.MethodPost, "/v1/demand", []byte(`{}`))
	if l.mutations.MissingRetryAfter != 1 {
		t.Fatalf("missing_retry_after=%d, want 1", l.mutations.MissingRetryAfter)
	}

	sent := l.mutations.Sent
	accounted := l.mutations.OK + l.mutations.Shed + l.mutations.Busy + l.mutations.TooLarge +
		l.mutations.ClientErrors + l.mutations.ServerErrors + l.mutations.TransportErrors
	if sent != accounted {
		t.Fatalf("sent %d, accounted %d", sent, accounted)
	}
	if l.mutLat.window().Count != int(sent)-int(l.mutations.TransportErrors) {
		t.Fatalf("latency samples %d", l.mutLat.window().Count)
	}
}

func TestSendMutationTransportError(t *testing.T) {
	l := &loader{o: &loadOpts{addr: "http://127.0.0.1:1"}, client: &http.Client{Timeout: 200 * time.Millisecond}}
	l.sendMutation(http.MethodPost, "/v1/demand", []byte(`{}`))
	if l.mutations.TransportErrors != 1 || l.mutations.Sent != 1 {
		t.Fatalf("transport_errors=%d sent=%d, want 1/1", l.mutations.TransportErrors, l.mutations.Sent)
	}
}

func TestDemandSequenceModels(t *testing.T) {
	g := gen.Hypercube(3)
	for _, model := range []string{"gravity", "diurnal", "adversarial"} {
		o := &loadOpts{model: model, total: 8, pairs: 4, seed: 3}
		seq, err := demandSequence(o, g)
		if err != nil {
			t.Fatalf("%s: %v", model, err)
		}
		if len(seq) == 0 {
			t.Fatalf("%s: empty sequence", model)
		}
		for i, d := range seq[:8] {
			if d.SupportSize() == 0 {
				t.Fatalf("%s epoch %d empty", model, i)
			}
			for _, p := range d.Support() {
				if p.U == p.V {
					t.Fatalf("%s epoch %d has a self-loop pair %+v", model, i, p)
				}
			}
		}
	}
	if _, err := demandSequence(&loadOpts{model: "nope"}, g); err == nil {
		t.Fatal("unknown model accepted")
	}
}

// TestAdversarialSequenceRotatesSupport: consecutive epochs share (almost)
// no pairs, which is the property that defeats warm starts.
func TestAdversarialSequenceRotatesSupport(t *testing.T) {
	g := gen.Hypercube(3)
	o := &loadOpts{model: "adversarial", total: 8, pairs: 6, seed: 9}
	seq, err := demandSequence(o, g)
	if err != nil {
		t.Fatal(err)
	}
	overlaps := 0
	for e := 1; e < 16; e++ {
		prev := make(map[demand.Pair]bool)
		for _, p := range seq[e-1].Support() {
			prev[p] = true
		}
		for _, p := range seq[e].Support() {
			if prev[p] {
				overlaps++
			}
		}
	}
	// Random rotations collide occasionally; most of the support must churn.
	if overlaps > 20 {
		t.Fatalf("adversarial sequence kept %d pairs across 15 transitions — not adversarial to warm starts", overlaps)
	}
}

func TestPatchBodyIsValidPatchJSON(t *testing.T) {
	d := demand.New()
	d.Set(0, 7, 2)
	d.Set(1, 6, 1)
	d.Set(2, 5, 3)
	d.Set(3, 4, 4)
	rng := rand.New(rand.NewPCG(1, 2))
	for i := 0; i < 32; i++ {
		raw := patchBody(d, rng)
		var req struct {
			Set []patchEntry `json:"set"`
		}
		if err := json.Unmarshal(raw, &req); err != nil {
			t.Fatalf("patch body %q: %v", raw, err)
		}
		if len(req.Set) == 0 {
			t.Fatalf("patch body %q sets nothing", raw)
		}
	}
}

func TestFlattenVars(t *testing.T) {
	out := map[string]float64{}
	flattenVars("", map[string]any{
		"epochs_total": 4.0,
		"solve_ms":     map[string]any{"p99": 1.5},
		"fleet":        map[string]any{"shards": map[string]any{"a": map[string]any{"too": 1.0}}},
		"name":         "string-ignored",
	}, out, 0)
	if out["epochs_total"] != 4 {
		t.Fatalf("epochs_total=%v", out["epochs_total"])
	}
	if out["solve_ms.p99"] != 1.5 {
		t.Fatalf("solve_ms.p99=%v", out["solve_ms.p99"])
	}
	if _, ok := out["fleet.shards.a.too"]; ok {
		t.Fatal("depth bound not enforced")
	}
	if _, ok := out["name"]; ok {
		t.Fatal("non-numeric leaf kept")
	}
}

func TestWindowOf(t *testing.T) {
	w := windowOf([]float64{1, 2, 3, 4})
	if w.Count != 4 || w.Mean != 2.5 || w.Max != 4 {
		t.Fatalf("window %+v", w)
	}
	if e := windowOf(nil); e.Count != 0 {
		t.Fatalf("empty window %+v", e)
	}
}
