// Command routedload is the closed-loop overload generator for routed: it
// drives a live daemon with a paced stream of demand mutations drawn from
// the temodel traffic generators, keeps a pool of concurrent readers on the
// serving surface the whole time, optionally interleaves link chaos
// (fail / brownout / restore cycles), and reports what the daemon actually
// did about it — achieved versus offered mutation rate, the shed and busy
// shares with their Retry-After hints, read latency quantiles under
// concurrent epochs, and a scrape of the server's own overload counters.
//
// "Closed loop" means every sender waits for its response before taking the
// next slot: when the daemon sheds or slows down, the offered rate sags
// instead of piling into an unbounded client-side backlog, which is how real
// well-behaved clients experience admission control. Overload is therefore
// expressed as a target rate (-qps) above the daemon's capacity, not as an
// open fire hose.
//
//	routedload -addr http://localhost:8344 -topo topo.json \
//	    -qps 200 -duration 30s -model adversarial -chaos 2s \
//	    -bench-out /tmp/bench
//
// The run writes BENCH_serving.json into -bench-out — the machine-readable
// artifact `benchtrend -serving` gates in CI: reads must never see a 5xx,
// every mutation must be accounted for (ok, shed, busy, or an explicit
// error class), and shed responses must carry Retry-After.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand/v2"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"sparseroute/internal/demand"
	"sparseroute/internal/graph"
	"sparseroute/internal/serial"
	"sparseroute/internal/stats"
	"sparseroute/internal/temodel"
)

// servingArtifact is the file -bench-out writes into its directory.
const servingArtifact = "BENCH_serving.json"

// servingWindow summarizes a latency sample in milliseconds, the same shape
// BENCH_engine.json uses.
type servingWindow struct {
	Count int     `json:"count"`
	Mean  float64 `json:"mean_ms"`
	P50   float64 `json:"p50_ms"`
	P99   float64 `json:"p99_ms"`
	Max   float64 `json:"max_ms"`
}

func windowOf(ms []float64) servingWindow {
	return servingWindow{
		Count: len(ms),
		Mean:  stats.Mean(ms),
		P50:   stats.Quantile(ms, 0.5),
		P99:   stats.Quantile(ms, 0.99),
		Max:   stats.Max(ms),
	}
}

// mutationStats is the client-side view of the mutating surface. Every sent
// request lands in exactly one outcome bucket, so
// Sent == OK + Shed + Busy + TooLarge + ClientErrors + ServerErrors +
// TransportErrors always holds — the accounting identity benchtrend gates.
type mutationStats struct {
	Sent int64 `json:"sent"`
	OK   int64 `json:"ok"` // 200 / 202
	// Shed is admission control: 429 (rate limit, inflight budget).
	Shed int64 `json:"shed"`
	// Busy is 503: full solve queue or an open circuit breaker.
	Busy     int64 `json:"busy"`
	TooLarge int64 `json:"too_large"` // 413 from the body cap
	// MissingRetryAfter counts shed/busy responses that failed to carry the
	// Retry-After hint; the gate requires zero.
	MissingRetryAfter int64         `json:"missing_retry_after"`
	ClientErrors      int64         `json:"client_errors"` // other 4xx
	ServerErrors      int64         `json:"server_errors"` // non-503 5xx
	TransportErrors   int64         `json:"transport_errors"`
	Latency           servingWindow `json:"latency"`
}

// readStats is the client-side view of GET /v1/routing under load. The gate
// requires ServerErrors == TransportErrors == 0: reads are lock-free and
// must stay clean no matter how hard the mutating surface is being shed.
type readStats struct {
	Sent            int64         `json:"sent"`
	OK              int64         `json:"ok"`
	NotFound        int64         `json:"not_found"` // only possible before the seed epoch
	ServerErrors    int64         `json:"server_errors"`
	TransportErrors int64         `json:"transport_errors"`
	Latency         servingWindow `json:"latency"`
}

// chaosStats counts the link events the chaos loop injected.
type chaosStats struct {
	Events    int64 `json:"events"`
	Fails     int64 `json:"fails"`
	Brownouts int64 `json:"brownouts"`
	Restores  int64 `json:"restores"`
	Errors    int64 `json:"errors"`
}

// servingReport is the BENCH_serving.json shape.
type servingReport struct {
	Name          string  `json:"name"`
	GeneratedUnix int64   `json:"generated_unix"`
	Addr          string  `json:"addr"`
	Model         string  `json:"model"`
	Seed          uint64  `json:"seed"`
	TargetQPS     float64 `json:"target_qps"`
	// OfferedQPS is what the closed loop actually sent; under overload it
	// sags below TargetQPS because senders block on shed responses.
	OfferedQPS  float64       `json:"offered_qps"`
	AchievedQPS float64       `json:"achieved_qps"` // accepted mutations/sec
	DurationSec float64       `json:"duration_sec"`
	Mutations   mutationStats `json:"mutations"`
	Reads       readStats     `json:"reads"`
	Chaos       chaosStats    `json:"chaos"`
	// Server is a flattened numeric scrape of the daemon's /debug/vars at
	// the end of the run: the server-side shed/breaker accounting next to
	// the client-side view above.
	Server map[string]float64 `json:"server,omitempty"`
}

// sample is a mutex-guarded latency collector (milliseconds).
type sample struct {
	mu sync.Mutex
	ms []float64
}

func (s *sample) push(d time.Duration) {
	s.mu.Lock()
	s.ms = append(s.ms, float64(d)/float64(time.Millisecond))
	s.mu.Unlock()
}

func (s *sample) window() servingWindow {
	s.mu.Lock()
	defer s.mu.Unlock()
	return windowOf(s.ms)
}

type loadOpts struct {
	addr      string
	topoPath  string
	model     string
	qps       float64
	duration  time.Duration
	pairs     int
	total     float64
	workers   int
	readers   int
	patchFrac float64
	deadline  time.Duration
	chaos     time.Duration
	seed      uint64
	benchOut  string
	timeout   time.Duration
}

func parseFlags(args []string) (*loadOpts, error) {
	o := &loadOpts{}
	fs := flag.NewFlagSet("routedload", flag.ContinueOnError)
	fs.StringVar(&o.addr, "addr", "http://localhost:8344", "base URL of the routed daemon")
	fs.StringVar(&o.topoPath, "topo", "", "topology file the daemon was started with (required: demand is generated against it)")
	fs.StringVar(&o.model, "model", "gravity", "demand model: gravity|diurnal|adversarial")
	fs.Float64Var(&o.qps, "qps", 50, "target mutation rate; set above the daemon's capacity for an overload drill")
	fs.DurationVar(&o.duration, "duration", 10*time.Second, "how long to drive load")
	fs.IntVar(&o.pairs, "pairs", 8, "demand pairs per epoch")
	fs.Float64Var(&o.total, "total", 16, "total demand volume per epoch")
	fs.IntVar(&o.workers, "workers", 8, "concurrent closed-loop senders")
	fs.IntVar(&o.readers, "readers", 4, "concurrent GET /v1/routing loops")
	fs.Float64Var(&o.patchFrac, "patch-frac", 0.25, "fraction of mutations sent as PATCH deltas instead of full POSTs")
	fs.DurationVar(&o.deadline, "deadline", 2*time.Second, "?deadline= attached to every mutation: the daemon abandons epochs still queued past it (0 = none)")
	fs.DurationVar(&o.chaos, "chaos", 0, "interval between link-chaos events (fail -> brownout -> restore cycle); 0 disables")
	fs.Uint64Var(&o.seed, "seed", 1, "demand and chaos RNG seed")
	fs.StringVar(&o.benchOut, "bench-out", "", "directory to write "+servingArtifact+" into (empty = stdout summary only)")
	fs.DurationVar(&o.timeout, "timeout", 10*time.Second, "per-request HTTP timeout")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if o.topoPath == "" {
		return nil, fmt.Errorf("-topo is required")
	}
	if o.qps <= 0 || o.workers < 1 || o.duration <= 0 {
		return nil, fmt.Errorf("need -qps > 0, -workers >= 1, -duration > 0")
	}
	return o, nil
}

// demandSequence pre-generates the epoch train the senders cycle through.
func demandSequence(o *loadOpts, g *graph.Graph) ([]*demand.Demand, error) {
	rng := rand.New(rand.NewPCG(o.seed, 0))
	const epochs = 256
	switch o.model {
	case "gravity":
		return temodel.GravitySequence(g, epochs, o.total, o.pairs, rng), nil
	case "diurnal":
		return temodel.DiurnalSequence(g, epochs, 32, o.total, o.pairs, 0.2, rng), nil
	case "adversarial":
		return temodel.AdversarialSequence(g, epochs, o.total, o.pairs, rng), nil
	}
	return nil, fmt.Errorf("unknown demand model %q (gravity|diurnal|adversarial)", o.model)
}

// loader owns one run's client, counters, and samples.
type loader struct {
	o      *loadOpts
	client *http.Client
	seq    []*demand.Demand

	next       atomic.Int64 // shared pacing sequence
	mutations  mutationStats
	reads      readStats
	chaosStats chaosStats
	mutLat     sample
	readLat    sample
}

// atomic counter helpers: the stats structs are plain int64 for clean JSON,
// so all increments go through atomic on their addresses.
func inc(p *int64) { atomic.AddInt64(p, 1) }

func (l *loader) url(path string) string { return l.o.addr + path }

// post sends body as one JSON request and classifies the response into the
// mutation buckets.
func (l *loader) sendMutation(method, path string, body []byte) {
	inc(&l.mutations.Sent)
	req, err := http.NewRequest(method, l.url(path), bytes.NewReader(body))
	if err != nil {
		inc(&l.mutations.TransportErrors)
		return
	}
	req.Header.Set("Content-Type", "application/json")
	start := time.Now()
	resp, err := l.client.Do(req)
	l.mutLat.push(time.Since(start))
	if err != nil {
		inc(&l.mutations.TransportErrors)
		return
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted:
		inc(&l.mutations.OK)
	case resp.StatusCode == http.StatusTooManyRequests:
		inc(&l.mutations.Shed)
		if resp.Header.Get("Retry-After") == "" {
			inc(&l.mutations.MissingRetryAfter)
		}
	case resp.StatusCode == http.StatusServiceUnavailable:
		inc(&l.mutations.Busy)
		if resp.Header.Get("Retry-After") == "" {
			inc(&l.mutations.MissingRetryAfter)
		}
	case resp.StatusCode == http.StatusRequestEntityTooLarge:
		inc(&l.mutations.TooLarge)
	case resp.StatusCode >= 500:
		inc(&l.mutations.ServerErrors)
	default:
		inc(&l.mutations.ClientErrors)
	}
}

// mutationPath carries the ?deadline= the daemon uses to abandon epochs a
// slow queue would otherwise solve for nobody.
func (l *loader) mutationPath() string {
	p := "/v1/demand"
	if l.o.deadline > 0 {
		p += "?deadline=" + l.o.deadline.String()
	}
	return p
}

func encodeDemand(d *demand.Demand) []byte {
	var buf bytes.Buffer
	if err := serial.EncodeDemand(&buf, d); err != nil {
		panic(err) // in-memory encode of a generated matrix cannot fail
	}
	return buf.Bytes()
}

// patchBody turns an epoch into a small PATCH delta: bump a couple of its
// pairs and clear one, exercising the touched-pair fast path.
type patchEntry struct {
	U      int     `json:"u"`
	V      int     `json:"v"`
	Amount float64 `json:"amount,omitempty"`
}

func patchBody(d *demand.Demand, rng *rand.Rand) []byte {
	sup := d.Support()
	req := struct {
		Set   []patchEntry `json:"set,omitempty"`
		Clear []patchEntry `json:"clear,omitempty"`
	}{}
	for i := 0; i < 2 && len(sup) > 0; i++ {
		p := sup[rng.IntN(len(sup))]
		req.Set = append(req.Set, patchEntry{U: p.U, V: p.V, Amount: d.Get(p.U, p.V) * 1.5})
	}
	if len(sup) > 2 && rng.Float64() < 0.5 {
		p := sup[rng.IntN(len(sup))]
		req.Clear = append(req.Clear, patchEntry{U: p.U, V: p.V})
	}
	raw, _ := json.Marshal(req)
	return raw
}

// sender is one closed-loop worker: it claims global slot i, sleeps until
// that slot's scheduled time start + i/qps, sends, and waits for the
// response before claiming the next slot. A slot scheduled past the end of
// the run ends the worker.
func (l *loader) sender(start, end time.Time, id int) {
	rng := rand.New(rand.NewPCG(l.o.seed, uint64(id)+1))
	period := time.Duration(float64(time.Second) / l.o.qps)
	for {
		i := l.next.Add(1) - 1
		target := start.Add(time.Duration(i) * period)
		if target.After(end) {
			return
		}
		if d := time.Until(target); d > 0 {
			time.Sleep(d)
		}
		d := l.seq[int(i)%len(l.seq)]
		if rng.Float64() < l.o.patchFrac {
			l.sendMutation(http.MethodPatch, l.mutationPath(), patchBody(d, rng))
		} else {
			l.sendMutation(http.MethodPost, l.mutationPath(), encodeDemand(d))
		}
	}
}

// reader hammers GET /v1/routing until ctx is done.
func (l *loader) reader(ctx context.Context) {
	for ctx.Err() == nil {
		inc(&l.reads.Sent)
		start := time.Now()
		resp, err := l.client.Get(l.url("/v1/routing"))
		l.readLat.push(time.Since(start))
		if err != nil {
			inc(&l.reads.TransportErrors)
			continue
		}
		resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusOK:
			inc(&l.reads.OK)
		case resp.StatusCode == http.StatusNotFound:
			inc(&l.reads.NotFound)
		case resp.StatusCode >= 500:
			inc(&l.reads.ServerErrors)
		}
		// A short breath keeps the reader pool from turning into its own
		// CPU-bound load test; the quantiles want steady sampling, not spin.
		time.Sleep(2 * time.Millisecond)
	}
}

// postLinks sends one link event, counting chaos errors (the restore path
// must keep working even while mutations shed, so errors here are real
// findings, not noise).
func (l *loader) postLinks(body any) bool {
	raw, _ := json.Marshal(body)
	resp, err := l.client.Post(l.url("/v1/links"), "application/json", bytes.NewReader(raw))
	if err != nil {
		inc(&l.chaosStats.Errors)
		return false
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		inc(&l.chaosStats.Errors)
		return false
	}
	inc(&l.chaosStats.Events)
	return true
}

// chaosLoop cycles fail -> brownout -> restore on random edges, always
// repairing what it broke before breaking something new, and restores
// everything on the way out so the daemon is left healthy.
func (l *loader) chaosLoop(ctx context.Context, g *graph.Graph) {
	rng := rand.New(rand.NewPCG(l.o.seed, 1<<32))
	ticker := time.NewTicker(l.o.chaos)
	defer ticker.Stop()
	failed, browned := -1, -1
	restoreAll := func() {
		if failed >= 0 && l.postLinks(map[string]any{"restore": []int{failed}}) {
			inc(&l.chaosStats.Restores)
		}
		if browned >= 0 && l.postLinks(map[string]any{"edge": browned, "capacity": 1.0}) {
			inc(&l.chaosStats.Restores)
		}
		failed, browned = -1, -1
	}
	defer restoreAll()
	step := 0
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
		switch step % 3 {
		case 0:
			e := rng.IntN(g.NumEdges())
			if l.postLinks(map[string]any{"fail": []int{e}}) {
				failed = e
				inc(&l.chaosStats.Fails)
			}
		case 1:
			e := rng.IntN(g.NumEdges())
			if e == failed {
				e = (e + 1) % g.NumEdges()
			}
			if l.postLinks(map[string]any{"edge": e, "capacity": 0.5}) {
				browned = e
				inc(&l.chaosStats.Brownouts)
			}
		case 2:
			restoreAll()
		}
		step++
	}
}

// seedEpoch submits one blocking epoch before readers start, so
// GET /v1/routing serves from the first sample onward.
func (l *loader) seedEpoch() error {
	resp, err := l.client.Post(l.url("/v1/demand?wait=1"), "application/json", bytes.NewReader(encodeDemand(l.seq[0])))
	if err != nil {
		return fmt.Errorf("seeding first epoch: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("seeding first epoch: status %s", resp.Status)
	}
	return nil
}

// scrapeVars flattens the numeric leaves of /debug/vars (up to two map
// levels, covering both the engine registry and fleet mode's nesting) into
// dotted keys.
func (l *loader) scrapeVars() map[string]float64 {
	resp, err := l.client.Get(l.url("/debug/vars"))
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	var raw map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		return nil
	}
	out := make(map[string]float64)
	flattenVars("", raw, out, 0)
	return out
}

func flattenVars(prefix string, v any, out map[string]float64, depth int) {
	switch x := v.(type) {
	case float64:
		out[prefix] = x
	case map[string]any:
		if depth >= 3 {
			return
		}
		for k, sub := range x {
			key := k
			if prefix != "" {
				key = prefix + "." + k
			}
			flattenVars(key, sub, out, depth+1)
		}
	}
}

func run(o *loadOpts) (*servingReport, error) {
	raw, err := os.ReadFile(o.topoPath)
	if err != nil {
		return nil, err
	}
	g, err := serial.DecodeGraph(bytes.NewReader(raw))
	if err != nil {
		return nil, fmt.Errorf("decoding topology %s: %w", o.topoPath, err)
	}
	seq, err := demandSequence(o, g)
	if err != nil {
		return nil, err
	}
	l := &loader{o: o, client: &http.Client{Timeout: o.timeout}, seq: seq}
	if err := l.seedEpoch(); err != nil {
		return nil, err
	}

	start := time.Now()
	end := start.Add(o.duration)
	ctx, cancel := context.WithDeadline(context.Background(), end)
	defer cancel()

	var readerWG, chaosWG, senderWG sync.WaitGroup
	for i := 0; i < o.readers; i++ {
		readerWG.Add(1)
		go func() { defer readerWG.Done(); l.reader(ctx) }()
	}
	if o.chaos > 0 {
		chaosWG.Add(1)
		go func() { defer chaosWG.Done(); l.chaosLoop(ctx, g) }()
	}
	for i := 0; i < o.workers; i++ {
		senderWG.Add(1)
		go func(id int) { defer senderWG.Done(); l.sender(start, end, id) }(i)
	}
	senderWG.Wait()
	cancel()
	readerWG.Wait()
	chaosWG.Wait()
	elapsed := time.Since(start)

	rep := &servingReport{
		Name:          "serving",
		GeneratedUnix: time.Now().Unix(),
		Addr:          o.addr,
		Model:         o.model,
		Seed:          o.seed,
		TargetQPS:     o.qps,
		OfferedQPS:    float64(l.mutations.Sent) / elapsed.Seconds(),
		AchievedQPS:   float64(l.mutations.OK) / elapsed.Seconds(),
		DurationSec:   elapsed.Seconds(),
		Mutations:     l.mutations,
		Reads:         l.reads,
		Chaos:         l.chaosStats,
		Server:        l.scrapeVars(),
	}
	rep.Mutations.Latency = l.mutLat.window()
	rep.Reads.Latency = l.readLat.window()
	return rep, nil
}

func summarize(w *os.File, r *servingReport) {
	fmt.Fprintf(w, "routedload: %s model=%s %.1fs\n", r.Addr, r.Model, r.DurationSec)
	fmt.Fprintf(w, "  mutations: target %.0f/s offered %.1f/s achieved %.1f/s\n", r.TargetQPS, r.OfferedQPS, r.AchievedQPS)
	fmt.Fprintf(w, "    sent %d ok %d shed %d busy %d too-large %d client-err %d server-err %d transport-err %d\n",
		r.Mutations.Sent, r.Mutations.OK, r.Mutations.Shed, r.Mutations.Busy,
		r.Mutations.TooLarge, r.Mutations.ClientErrors, r.Mutations.ServerErrors, r.Mutations.TransportErrors)
	fmt.Fprintf(w, "    latency p50 %.2fms p99 %.2fms\n", r.Mutations.Latency.P50, r.Mutations.Latency.P99)
	fmt.Fprintf(w, "  reads: sent %d ok %d not-found %d server-err %d transport-err %d p50 %.2fms p99 %.2fms\n",
		r.Reads.Sent, r.Reads.OK, r.Reads.NotFound, r.Reads.ServerErrors, r.Reads.TransportErrors,
		r.Reads.Latency.P50, r.Reads.Latency.P99)
	if r.Chaos.Events > 0 || r.Chaos.Errors > 0 {
		fmt.Fprintf(w, "  chaos: %d events (%d fails, %d brownouts, %d restores), %d errors\n",
			r.Chaos.Events, r.Chaos.Fails, r.Chaos.Brownouts, r.Chaos.Restores, r.Chaos.Errors)
	}
	for _, k := range []string{"shed_requests", "busy_rejects", "rate_limited", "inflight_rejects", "breaker_opens", "epochs_abandoned"} {
		if v, ok := r.Server[k]; ok && v > 0 {
			fmt.Fprintf(w, "  server %s=%.0f\n", k, v)
		}
	}
}

func main() {
	o, err := parseFlags(os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "routedload:", err)
		os.Exit(2)
	}
	rep, err := run(o)
	if err != nil {
		fmt.Fprintln(os.Stderr, "routedload:", err)
		os.Exit(1)
	}
	summarize(os.Stdout, rep)
	if o.benchOut != "" {
		if err := os.MkdirAll(o.benchOut, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "routedload:", err)
			os.Exit(1)
		}
		path := filepath.Join(o.benchOut, servingArtifact)
		raw, err := json.MarshalIndent(rep, "", " ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "routedload:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "routedload:", err)
			os.Exit(1)
		}
		fmt.Println("routedload: wrote", path)
	}
}
