package main

import (
	"os"
	"path/filepath"
	"testing"
)

// TestWorkflowEndToEnd drives every subcommand through temp files: generate
// topology -> demand -> sampled system -> adaptation -> evaluation.
func TestWorkflowEndToEnd(t *testing.T) {
	dir := t.TempDir()
	topo := filepath.Join(dir, "topo.json")
	dmd := filepath.Join(dir, "demand.json")
	sys := filepath.Join(dir, "system.json")
	routing := filepath.Join(dir, "routing.json")

	if err := cmdTopo([]string{"-kind", "grid", "-rows", "4", "-cols", "4", "-out", topo}); err != nil {
		t.Fatal(err)
	}
	if err := cmdDemand([]string{"-topo", topo, "-kind", "permutation", "-pairs", "5", "-out", dmd}); err != nil {
		t.Fatal(err)
	}
	if err := cmdSample([]string{"-topo", topo, "-demand", dmd, "-router", "raecke", "-trees", "4", "-s", "3", "-out", sys}); err != nil {
		t.Fatal(err)
	}
	if err := cmdAdapt([]string{"-topo", topo, "-system", sys, "-demand", dmd, "-out", routing}); err != nil {
		t.Fatal(err)
	}
	if err := cmdEval([]string{"-topo", topo, "-system", sys, "-demand", dmd, "-optiters", "100"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdInspect([]string{"-topo", topo, "-system", sys}); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{topo, dmd, sys, routing} {
		st, err := os.Stat(f)
		if err != nil || st.Size() == 0 {
			t.Fatalf("artifact %s missing or empty: %v", f, err)
		}
	}
}

func TestWorkflowIntegralAdapt(t *testing.T) {
	dir := t.TempDir()
	topo := filepath.Join(dir, "topo.json")
	dmd := filepath.Join(dir, "demand.json")
	sys := filepath.Join(dir, "system.json")
	routing := filepath.Join(dir, "routing.json")
	if err := cmdTopo([]string{"-kind", "hypercube", "-dim", "4", "-out", topo}); err != nil {
		t.Fatal(err)
	}
	if err := cmdDemand([]string{"-topo", topo, "-kind", "uniform", "-pairs", "4", "-amount", "2", "-out", dmd}); err != nil {
		t.Fatal(err)
	}
	if err := cmdSample([]string{"-topo", topo, "-demand", dmd, "-router", "valiant", "-dim", "4", "-s", "3", "-lambda", "-maxlambda", "2", "-out", sys}); err != nil {
		t.Fatal(err)
	}
	if err := cmdAdapt([]string{"-topo", topo, "-system", sys, "-demand", dmd, "-integral", "-out", routing}); err != nil {
		t.Fatal(err)
	}
}

func TestTopoKinds(t *testing.T) {
	dir := t.TempDir()
	for _, kind := range []string{"hypercube", "grid", "torus", "expander", "wan", "fattree", "ring"} {
		out := filepath.Join(dir, kind+".json")
		args := []string{"-kind", kind, "-out", out, "-dim", "3", "-rows", "3", "-cols", "3", "-n", "12", "-arity", "4"}
		if err := cmdTopo(args); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
	}
	if err := cmdTopo([]string{"-kind", "nope", "-out", filepath.Join(dir, "x.json")}); err == nil {
		t.Fatal("unknown kind should error")
	}
}

func TestDemandKindsAndErrors(t *testing.T) {
	dir := t.TempDir()
	topo := filepath.Join(dir, "topo.json")
	if err := cmdTopo([]string{"-kind", "hypercube", "-dim", "4", "-out", topo}); err != nil {
		t.Fatal(err)
	}
	for _, kind := range []string{"permutation", "gravity", "uniform", "transpose", "bitreversal"} {
		out := filepath.Join(dir, kind+".json")
		if err := cmdDemand([]string{"-topo", topo, "-kind", kind, "-pairs", "4", "-dim", "4", "-out", out}); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
	}
	if err := cmdDemand([]string{"-topo", topo, "-kind", "nope", "-out", filepath.Join(dir, "x.json")}); err == nil {
		t.Fatal("unknown demand kind should error")
	}
	if err := cmdDemand([]string{"-topo", filepath.Join(dir, "missing.json"), "-out", filepath.Join(dir, "x.json")}); err == nil {
		t.Fatal("missing topology should error")
	}
}

func TestSampleRouterErrors(t *testing.T) {
	dir := t.TempDir()
	topo := filepath.Join(dir, "topo.json")
	if err := cmdTopo([]string{"-kind", "ring", "-n", "6", "-out", topo}); err != nil {
		t.Fatal(err)
	}
	if err := cmdSample([]string{"-topo", topo, "-router", "nope", "-out", filepath.Join(dir, "s.json")}); err == nil {
		t.Fatal("unknown router should error")
	}
	// Valiant on a ring must fail (not a hypercube).
	if err := cmdSample([]string{"-topo", topo, "-router", "valiant", "-dim", "3", "-out", filepath.Join(dir, "s.json")}); err == nil {
		t.Fatal("valiant on a ring should error")
	}
}
