// Command sparseroute is the deployment-style workflow tool: generate a
// topology, generate demands, sample a semi-oblivious path system from an
// oblivious routing (the offline "install paths" phase), adapt the sending
// rates to a revealed demand (the online phase), and evaluate competitive
// ratios. All artifacts are JSON files (see internal/serial).
//
// Subcommands:
//
//	sparseroute topo    -kind hypercube -dim 6 -out topo.json
//	sparseroute demand  -topo topo.json -kind permutation -pairs 16 -out d.json
//	sparseroute sample  -topo topo.json -router raecke -s 4 -demand d.json -out sys.json
//	sparseroute adapt   -topo topo.json -system sys.json -demand d.json -out routing.json
//	sparseroute eval    -topo topo.json -system sys.json -demand d.json
//
// For the long-running form of the same loop — paths installed once, rates
// re-optimized per demand epoch over HTTP — see the cmd/routed daemon.
package main

import (
	"flag"
	"fmt"
	"math/rand/v2"
	"os"
	"strings"

	"sparseroute/internal/core"
	"sparseroute/internal/demand"
	"sparseroute/internal/graph"
	"sparseroute/internal/graph/gen"
	"sparseroute/internal/mcf"
	"sparseroute/internal/oblivious"
	"sparseroute/internal/serial"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "topo":
		err = cmdTopo(os.Args[2:])
	case "demand":
		err = cmdDemand(os.Args[2:])
	case "sample":
		err = cmdSample(os.Args[2:])
	case "adapt":
		err = cmdAdapt(os.Args[2:])
	case "eval":
		err = cmdEval(os.Args[2:])
	case "inspect":
		err = cmdInspect(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "sparseroute:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: sparseroute {topo|demand|sample|adapt|eval|inspect} [flags]  (-h per subcommand)")
	fmt.Fprintln(os.Stderr, "serve: to run the online epoch loop as a daemon (HTTP demands, snapshots, metrics), use cmd/routed")
	os.Exit(2)
}

func cmdInspect(args []string) error {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	topo := fs.String("topo", "topo.json", "topology file")
	system := fs.String("system", "system.json", "path system file")
	fs.Parse(args)

	g, err := loadGraph(*topo)
	if err != nil {
		return err
	}
	ps, err := loadSystem(*system, g)
	if err != nil {
		return err
	}
	st := ps.Stats()
	fmt.Printf("graph:              %s\n", g)
	fmt.Printf("pairs:              %d\n", st.Pairs)
	fmt.Printf("total paths:        %d (sparsity %d, unique %d, mean unique %.2f)\n",
		st.TotalPaths, st.Sparsity, st.UniqueSparsity, st.MeanUnique)
	fmt.Printf("hops:               mean %.2f, max %d, mean stretch %.2f\n",
		st.MeanHops, st.MaxHops, st.MeanStretch)
	fmt.Printf("edge-disjoint pairs: %.1f%%\n", 100*st.DisjointFraction)
	return nil
}

func loadGraph(path string) (*graph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return serial.DecodeGraph(f)
}

func loadDemand(path string) (*demand.Demand, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return serial.DecodeDemand(f)
}

func writeFile(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func cmdTopo(args []string) error {
	fs := flag.NewFlagSet("topo", flag.ExitOnError)
	kind := fs.String("kind", "hypercube", "hypercube|grid|torus|expander|wan|fattree|ring")
	dim := fs.Int("dim", 6, "hypercube dimension")
	rows := fs.Int("rows", 6, "grid/torus rows")
	cols := fs.Int("cols", 6, "grid/torus cols")
	n := fs.Int("n", 32, "vertex count (expander/wan/ring)")
	deg := fs.Int("deg", 4, "expander degree")
	extra := fs.Int("extra", 32, "wan shortcut edges")
	arity := fs.Int("arity", 4, "fat-tree arity")
	seed := fs.Uint64("seed", 1, "random seed")
	out := fs.String("out", "topo.json", "output file")
	fs.Parse(args)

	rng := rand.New(rand.NewPCG(*seed, 0x70))
	var g *graph.Graph
	switch *kind {
	case "hypercube":
		g = gen.Hypercube(*dim)
	case "grid":
		g = gen.Grid(*rows, *cols)
	case "torus":
		g = gen.Torus(*rows, *cols)
	case "expander":
		g = gen.RandomRegular(*n, *deg, rng)
	case "wan":
		g = gen.SyntheticWAN(*n, *extra, rng)
	case "fattree":
		g, _ = gen.FatTree(*arity)
	case "ring":
		g = gen.Ring(*n)
	default:
		return fmt.Errorf("unknown topology kind %q", *kind)
	}
	if err := writeFile(*out, func(f *os.File) error { return serial.EncodeGraph(f, g) }); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %s\n", *out, g)
	return nil
}

func cmdDemand(args []string) error {
	fs := flag.NewFlagSet("demand", flag.ExitOnError)
	topo := fs.String("topo", "topo.json", "topology file")
	kind := fs.String("kind", "permutation", "permutation|gravity|uniform|transpose|bitreversal")
	pairs := fs.Int("pairs", 16, "number of demand pairs")
	total := fs.Float64("total", 0, "total gravity demand (default: n)")
	amount := fs.Float64("amount", 1, "per-pair amount for uniform demands")
	dim := fs.Int("dim", 6, "hypercube dimension (transpose/bitreversal)")
	seed := fs.Uint64("seed", 1, "random seed")
	out := fs.String("out", "demand.json", "output file")
	fs.Parse(args)

	g, err := loadGraph(*topo)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewPCG(*seed, 0xde))
	var d *demand.Demand
	switch *kind {
	case "permutation":
		d = demand.RandomPermutation(g.NumVertices(), *pairs, rng)
	case "gravity":
		tot := *total
		if tot <= 0 {
			tot = float64(g.NumVertices())
		}
		d = demand.Gravity(g, tot, *pairs, rng)
	case "uniform":
		d = demand.UniformPairs(g.NumVertices(), *pairs, *amount, rng)
	case "transpose":
		d = demand.Transpose(*dim)
	case "bitreversal":
		d = demand.BitReversal(*dim)
	default:
		return fmt.Errorf("unknown demand kind %q", *kind)
	}
	if err := writeFile(*out, func(f *os.File) error { return serial.EncodeDemand(f, d) }); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %s\n", *out, d)
	return nil
}

func cmdSample(args []string) error {
	fs := flag.NewFlagSet("sample", flag.ExitOnError)
	topo := fs.String("topo", "topo.json", "topology file")
	dmd := fs.String("demand", "", "demand file (sample its pairs; empty = all pairs)")
	routerName := fs.String("router", "raecke", strings.Join(oblivious.RouterNames(), "|"))
	s := fs.Int("s", 4, "paths per pair (R)")
	withCuts := fs.Bool("lambda", false, "sample R + lambda(u,v) paths (non-unit demands)")
	maxLambda := fs.Int("maxlambda", 0, "cap on lambda (0 = uncapped)")
	dim := fs.Int("dim", 6, "hypercube dimension (valiant)")
	trees := fs.Int("trees", 12, "raecke tree count")
	k := fs.Int("k", 4, "ksp path count")
	seed := fs.Uint64("seed", 1, "random seed")
	out := fs.String("out", "system.json", "output file")
	fs.Parse(args)

	g, err := loadGraph(*topo)
	if err != nil {
		return err
	}
	var pairs []demand.Pair
	if *dmd == "" {
		pairs = core.AllPairs(g.NumVertices())
	} else {
		d, err := loadDemand(*dmd)
		if err != nil {
			return err
		}
		pairs = d.Support()
	}
	router, err := oblivious.Build(*routerName, g, &oblivious.BuildOptions{
		Dim: *dim, Trees: *trees, K: *k, Seed: *seed,
	})
	if err != nil {
		return err
	}
	var ps *core.PathSystem
	if *withCuts {
		ps, err = core.RPlusLambdaSample(router, pairs, *s, *maxLambda, *seed)
	} else {
		ps, err = core.RSample(router, pairs, *s, *seed)
	}
	if err != nil {
		return err
	}
	if err := writeFile(*out, func(f *os.File) error { return serial.EncodePathSystem(f, ps) }); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d paths, sparsity %d, max hops %d\n",
		*out, ps.TotalPaths(), ps.Sparsity(), ps.MaxHops())
	return nil
}

func loadSystem(path string, g *graph.Graph) (*core.PathSystem, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return serial.DecodePathSystem(f, g)
}

func cmdAdapt(args []string) error {
	fs := flag.NewFlagSet("adapt", flag.ExitOnError)
	topo := fs.String("topo", "topo.json", "topology file")
	system := fs.String("system", "system.json", "path system file")
	dmd := fs.String("demand", "demand.json", "demand file")
	integral := fs.Bool("integral", false, "round to one path per packet")
	seed := fs.Uint64("seed", 1, "random seed (integral rounding)")
	out := fs.String("out", "routing.json", "output file")
	fs.Parse(args)

	g, err := loadGraph(*topo)
	if err != nil {
		return err
	}
	ps, err := loadSystem(*system, g)
	if err != nil {
		return err
	}
	d, err := loadDemand(*dmd)
	if err != nil {
		return err
	}
	var routing interface {
		MaxCongestion(*graph.Graph) float64
		Dilation() int
	}
	if *integral {
		r, err := ps.AdaptIntegral(d, nil, rand.New(rand.NewPCG(*seed, 0x1)))
		if err != nil {
			return err
		}
		routing = r
		if err := writeFile(*out, func(f *os.File) error { return serial.EncodeRouting(f, g, r) }); err != nil {
			return err
		}
	} else {
		r, err := ps.Adapt(d, nil)
		if err != nil {
			return err
		}
		routing = r
		if err := writeFile(*out, func(f *os.File) error { return serial.EncodeRouting(f, g, r) }); err != nil {
			return err
		}
	}
	fmt.Printf("wrote %s: congestion %.4f, dilation %d\n",
		*out, routing.MaxCongestion(g), routing.Dilation())
	return nil
}

func cmdEval(args []string) error {
	fs := flag.NewFlagSet("eval", flag.ExitOnError)
	topo := fs.String("topo", "topo.json", "topology file")
	system := fs.String("system", "system.json", "path system file")
	dmd := fs.String("demand", "demand.json", "demand file")
	optIters := fs.Int("optiters", 400, "MWU iterations for the OPT baseline")
	fs.Parse(args)

	g, err := loadGraph(*topo)
	if err != nil {
		return err
	}
	ps, err := loadSystem(*system, g)
	if err != nil {
		return err
	}
	d, err := loadDemand(*dmd)
	if err != nil {
		return err
	}
	adapted, err := ps.Adapt(d, nil)
	if err != nil {
		return err
	}
	semi := adapted.MaxCongestion(g)
	cert, err := mcf.ApproxOptWithCertificate(g, d, &mcf.Options{Iterations: *optIters})
	if err != nil {
		return err
	}
	fmt.Printf("semi-oblivious congestion: %.4f\n", semi)
	fmt.Printf("certified OPT interval:    [%.4f, %.4f] (gap %.3f)\n", cert.Lower, cert.Upper, cert.Gap())
	if cert.Upper > 0 {
		fmt.Printf("competitive ratio:         %.3f (certified <= %.3f)\n",
			semi/cert.Upper, semi/cert.Lower)
	}
	fmt.Println("hottest links:")
	for _, h := range adapted.HotEdges(g, 5) {
		fmt.Printf("  (%d,%d) load %.3f / cap %.0f = %.3f\n", h.U, h.V, h.Load, h.Capacity, h.Congestion)
	}
	return nil
}
