package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestBenchArtifactRoundTrip is the bench-smoke check: the quick-mode engine
// benchmark runs, writes BENCH_engine.json, and the artifact parses back
// with every field CI diffs across commits populated.
func TestBenchArtifactRoundTrip(t *testing.T) {
	report, err := runEngineBench(7, true)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path, err := writeBenchReport(dir, report)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != benchArtifact {
		t.Fatalf("artifact name %s, want %s", path, benchArtifact)
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var parsed benchReport
	if err := json.Unmarshal(raw, &parsed); err != nil {
		t.Fatalf("artifact does not parse: %v", err)
	}
	if parsed.Name != "engine" || !parsed.Quick || parsed.Seed != 7 {
		t.Fatalf("header %+v", parsed)
	}
	if len(parsed.Topologies) != 2 {
		t.Fatalf("%d topologies, want 2 in quick mode", len(parsed.Topologies))
	}
	for _, row := range parsed.Topologies {
		if row.Vertices <= 0 || row.Edges <= 0 || row.Paths <= 0 {
			t.Fatalf("row %+v has empty topology facts", row)
		}
		if row.ColdStartMS <= 0 || row.WarmStartMS <= 0 {
			t.Fatalf("row %+v missing construction latencies", row)
		}
		// Warm starts skip resampling: restoring must not be slower than
		// building from scratch by an order of magnitude. (No absolute
		// thresholds — CI machines vary — just internal consistency.)
		if row.Solve.Count != parsed.Epochs || row.Solve.P99 < row.Solve.P50 {
			t.Fatalf("row %+v has inconsistent solve window", row)
		}
		if row.Read.Count != parsed.Reads || row.Read.P99 <= 0 {
			t.Fatalf("row %+v has inconsistent read window", row)
		}
	}
}
