package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"time"

	"sparseroute/internal/core"
	"sparseroute/internal/demand"
	"sparseroute/internal/graph"
	"sparseroute/internal/graph/gen"
	"sparseroute/internal/oblivious"
	"sparseroute/internal/obs"
	"sparseroute/internal/service"
	"sparseroute/internal/stats"
)

// The serving-engine benchmark behind -bench-out: per topology size it
// measures cold engine construction (build the router, sample the path
// system), warm construction (restore the same system from a snapshot — the
// fleet's reload path), solve latency over a train of demand epochs, and
// read latency against GET /v1/paths. The result is written as
// BENCH_engine.json — a machine-readable artifact CI can parse and diff
// across commits, unlike the prose tables of EXPERIMENTS.md.

// benchArtifact is the file -bench-out writes into its directory.
const benchArtifact = "BENCH_engine.json"

// benchWindow summarizes a latency sample in milliseconds.
type benchWindow struct {
	Count int     `json:"count"`
	Mean  float64 `json:"mean_ms"`
	P50   float64 `json:"p50_ms"`
	P99   float64 `json:"p99_ms"`
	Max   float64 `json:"max_ms"`
}

func windowOf(ms []float64) benchWindow {
	return benchWindow{
		Count: len(ms),
		Mean:  stats.Mean(ms),
		P50:   stats.Quantile(ms, 0.5),
		P99:   stats.Quantile(ms, 0.99),
		Max:   stats.Max(ms),
	}
}

// benchTopology is one topology size's row.
type benchTopology struct {
	Topology    string      `json:"topology"`
	Vertices    int         `json:"vertices"`
	Edges       int         `json:"edges"`
	Paths       int         `json:"paths"`
	ColdStartMS float64     `json:"cold_start_ms"`
	WarmStartMS float64     `json:"warm_start_ms"`
	Solve       benchWindow `json:"solve"`
	Read        benchWindow `json:"read"`

	// Warm-start pipeline: a train of PATCH deltas against one engine
	// (WarmSolve) versus cold full re-solves of the identical matrices on a
	// warm-disabled twin (ColdResolve). Both force the MWU solver so the
	// ratio isolates solver work rather than LP-vs-MWU dispatch.
	WarmSolve   benchWindow `json:"warm_solve"`
	ColdResolve benchWindow `json:"cold_resolve"`
	// WarmColdRatio is WarmSolve.Mean / ColdResolve.Mean.
	WarmColdRatio float64 `json:"warm_cold_ratio"`
	// WarmCongestionDelta is the worst per-epoch relative congestion gap
	// between the warm and cold routings of the same matrix.
	WarmCongestionDelta float64 `json:"warm_congestion_delta"`
	// DeltaEpochs counts the warm epochs the incremental touched-pair path
	// actually served (the rest fell back to full warm or cold solves).
	DeltaEpochs int `json:"delta_epochs"`
}

// benchReport is the BENCH_engine.json shape.
type benchReport struct {
	Name          string          `json:"name"`
	GeneratedUnix int64           `json:"generated_unix"`
	Router        string          `json:"router"`
	R             int             `json:"r"`
	Seed          uint64          `json:"seed"`
	Quick         bool            `json:"quick"`
	Epochs        int             `json:"epochs"`
	Reads         int             `json:"reads"`
	Topologies    []benchTopology `json:"topologies"`
}

type benchCase struct {
	name string
	g    *graph.Graph
}

func benchCases(quick bool) []benchCase {
	if quick {
		return []benchCase{
			{"hypercube-3", gen.Hypercube(3)},
			{"grid-4x4", gen.Grid(4, 4)},
		}
	}
	return []benchCase{
		{"hypercube-3", gen.Hypercube(3)},
		{"hypercube-4", gen.Hypercube(4)},
		{"grid-6x6", gen.Grid(6, 6)},
		{"grid-10x10", gen.Grid(10, 10)},
	}
}

// runEngineBench measures the serving engine across the benchmark
// topologies.
func runEngineBench(seed uint64, quick bool) (*benchReport, error) {
	report := &benchReport{
		Name:          "engine",
		GeneratedUnix: time.Now().Unix(),
		Router:        "raecke",
		R:             3,
		Seed:          seed,
		Quick:         quick,
		Epochs:        32,
		Reads:         2000,
	}
	if quick {
		report.Epochs, report.Reads = 8, 200
	}
	for _, bc := range benchCases(quick) {
		row, err := benchOneTopology(bc, report)
		if err != nil {
			return nil, fmt.Errorf("bench %s: %w", bc.name, err)
		}
		report.Topologies = append(report.Topologies, *row)
	}
	return report, nil
}

func benchOneTopology(bc benchCase, report *benchReport) (*benchTopology, error) {
	cfg := service.Config{
		RouterName: report.Router,
		R:          report.R,
		Seed:       report.Seed,
		Workers:    1,
		QueueDepth: report.Epochs + 1,
	}

	// Cold start: build the router and sample the path system.
	start := time.Now()
	router, err := oblivious.Build(report.Router, bc.g, &oblivious.BuildOptions{Seed: report.Seed})
	if err != nil {
		return nil, err
	}
	cfg.Graph, cfg.Router = bc.g, router
	e, err := service.New(cfg)
	if err != nil {
		return nil, err
	}
	defer e.Close()
	cold := time.Since(start)

	// Warm start: snapshot, then restore — the fleet's reload path.
	var snap bytes.Buffer
	if err := e.WriteSnapshot(&snap); err != nil {
		return nil, err
	}
	start = time.Now()
	restored, err := service.Restore(bytes.NewReader(snap.Bytes()), service.Config{})
	if err != nil {
		return nil, err
	}
	warm := time.Since(start)
	restored.Close()

	row := &benchTopology{
		Topology:    bc.name,
		Vertices:    bc.g.NumVertices(),
		Edges:       bc.g.NumEdges(),
		Paths:       e.System().TotalPaths(),
		ColdStartMS: float64(cold) / float64(time.Millisecond),
		WarmStartMS: float64(warm) / float64(time.Millisecond),
	}

	// Solve latency: a train of random demand epochs, each waited to
	// completion so the measurement is per-solve, not pipeline throughput.
	rng := rand.New(rand.NewPCG(report.Seed, 0xb43c4))
	n := bc.g.NumVertices()
	ctx := context.Background()
	solveMS := make([]float64, 0, report.Epochs)
	for i := 0; i < report.Epochs; i++ {
		d := demand.New()
		for k := 0; k < n/2; k++ {
			u, v := rng.IntN(n), rng.IntN(n)
			if u == v {
				continue
			}
			d.Set(u, v, 0.5+rng.Float64())
		}
		start = time.Now()
		epoch, err := e.SubmitDemand(d)
		if err != nil {
			return nil, err
		}
		out, err := e.Wait(ctx, epoch)
		if err != nil {
			return nil, err
		}
		if !out.OK {
			return nil, fmt.Errorf("epoch %d did not solve: %+v", epoch, out)
		}
		solveMS = append(solveMS, float64(time.Since(start))/float64(time.Millisecond))
	}
	row.Solve = windowOf(solveMS)

	// Read latency: GET /v1/paths through the real handler stack, recorder-
	// backed so only the serving path is on the clock.
	srv := service.NewServer(e, "")
	readMS := make([]float64, 0, report.Reads)
	for i := 0; i < report.Reads; i++ {
		u, v := rng.IntN(n), rng.IntN(n)
		if u == v {
			v = (u + 1) % n
		}
		req := httptest.NewRequest("GET", fmt.Sprintf("/v1/paths?src=%d&dst=%d", u, v), nil)
		rec := httptest.NewRecorder()
		start = time.Now()
		srv.ServeHTTP(rec, req)
		elapsed := time.Since(start)
		if rec.Code != http.StatusOK {
			return nil, fmt.Errorf("read %d/%d -> %d", u, v, rec.Code)
		}
		readMS = append(readMS, float64(elapsed)/float64(time.Millisecond))
	}
	row.Read = windowOf(readMS)

	if err := benchWarmVsCold(bc, report, row); err != nil {
		return nil, err
	}
	return row, nil
}

// benchWarmVsCold measures the incremental epoch pipeline: one engine takes
// a base matrix and then a train of PATCH deltas (each touching a handful of
// pairs), while a warm-disabled twin cold re-solves the identical full
// matrices. Both engines force the MWU solver (ExactThreshold -1) — on these
// topology sizes the exact LP would absorb every solve and the warm seam
// would never engage — so the warm/cold ratio isolates solver work.
func benchWarmVsCold(bc benchCase, report *benchReport, row *benchTopology) error {
	router, err := oblivious.Build(report.Router, bc.g, &oblivious.BuildOptions{Seed: report.Seed})
	if err != nil {
		return err
	}
	base := service.Config{
		Graph:      bc.g,
		Router:     router,
		RouterName: report.Router,
		R:          report.R,
		Seed:       report.Seed,
		Workers:    1,
		QueueDepth: report.Epochs + 2,
		Adapt:      &core.AdaptOptions{ExactThreshold: -1},
	}
	warmE, err := service.New(base)
	if err != nil {
		return err
	}
	defer warmE.Close()
	coldCfg := base
	coldCfg.DisableWarmStart = true
	coldE, err := service.New(coldCfg)
	if err != nil {
		return err
	}
	defer coldE.Close()

	rng := rand.New(rand.NewPCG(report.Seed, 0xde17a))
	n := bc.g.NumVertices()
	d := demand.New()
	for k := 0; k < n/2; k++ {
		u, v := rng.IntN(n), rng.IntN(n)
		if u == v {
			continue
		}
		d.Set(u, v, 0.5+rng.Float64())
	}
	ctx := context.Background()
	settle := func(e *service.Engine, dm *demand.Demand) error {
		epoch, err := e.SubmitDemand(dm)
		if err != nil {
			return err
		}
		out, err := e.Wait(ctx, epoch)
		if err != nil {
			return err
		}
		if !out.OK {
			return fmt.Errorf("base epoch %d did not solve: %+v", epoch, out)
		}
		return nil
	}
	if err := settle(warmE, d); err != nil {
		return err
	}
	if err := settle(coldE, d.Clone()); err != nil {
		return err
	}

	// The delta train is gentle churn — the regime the warm pipeline is built
	// for (successive epoch matrices close, per SMORE/Kulfi): each epoch
	// nudges a handful of existing pairs by ±2.5%. Untouched pairs stay
	// frozen at placements chosen for the anchor matrix, so the warm-vs-cold
	// congestion gap scales directly with the nudge size — bigger swings
	// belong to full re-submission, not the delta path. The engine's drift
	// anchor and streak cap still force occasional cold refreshes as nudges
	// accumulate.
	touch := max(1, n/8)
	support := d.Support()
	warmMS := make([]float64, 0, report.Epochs)
	coldMS := make([]float64, 0, report.Epochs)
	for i := 0; i < report.Epochs; i++ {
		set := make([]service.PairAmount, 0, touch)
		for len(set) < touch {
			p := support[rng.IntN(len(support))]
			amt := d.Get(p.U, p.V) * (1 + 0.05*(rng.Float64()-0.5))
			set = append(set, service.PairAmount{U: p.U, V: p.V, Amount: amt})
			d.Set(p.U, p.V, amt)
		}

		start := time.Now()
		epoch, err := warmE.PatchDemand(set, nil)
		if err != nil {
			return err
		}
		warmOut, err := warmE.Wait(ctx, epoch)
		if err != nil {
			return err
		}
		if !warmOut.OK {
			return fmt.Errorf("delta epoch %d did not solve: %+v", epoch, warmOut)
		}
		warmMS = append(warmMS, float64(time.Since(start))/float64(time.Millisecond))
		if warmOut.Warm == obs.WarmDelta {
			row.DeltaEpochs++
		}

		start = time.Now()
		epoch, err = coldE.SubmitDemand(d.Clone())
		if err != nil {
			return err
		}
		coldOut, err := coldE.Wait(ctx, epoch)
		if err != nil {
			return err
		}
		if !coldOut.OK {
			return fmt.Errorf("cold re-solve epoch %d did not solve: %+v", epoch, coldOut)
		}
		coldMS = append(coldMS, float64(time.Since(start))/float64(time.Millisecond))

		if coldOut.Congestion > 0 {
			gap := math.Abs(warmOut.Congestion-coldOut.Congestion) / coldOut.Congestion
			if gap > row.WarmCongestionDelta {
				row.WarmCongestionDelta = gap
			}
		}
	}
	row.WarmSolve = windowOf(warmMS)
	row.ColdResolve = windowOf(coldMS)
	if row.ColdResolve.Mean > 0 {
		row.WarmColdRatio = row.WarmSolve.Mean / row.ColdResolve.Mean
	}
	return nil
}

// writeBenchReport renders the report into dir as BENCH_engine.json.
func writeBenchReport(dir string, report *benchReport) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	raw, err := json.MarshalIndent(report, "", " ")
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, benchArtifact)
	return path, os.WriteFile(path, append(raw, '\n'), 0o644)
}
