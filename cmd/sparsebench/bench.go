package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"time"

	"sparseroute/internal/demand"
	"sparseroute/internal/graph"
	"sparseroute/internal/graph/gen"
	"sparseroute/internal/oblivious"
	"sparseroute/internal/service"
	"sparseroute/internal/stats"
)

// The serving-engine benchmark behind -bench-out: per topology size it
// measures cold engine construction (build the router, sample the path
// system), warm construction (restore the same system from a snapshot — the
// fleet's reload path), solve latency over a train of demand epochs, and
// read latency against GET /v1/paths. The result is written as
// BENCH_engine.json — a machine-readable artifact CI can parse and diff
// across commits, unlike the prose tables of EXPERIMENTS.md.

// benchArtifact is the file -bench-out writes into its directory.
const benchArtifact = "BENCH_engine.json"

// benchWindow summarizes a latency sample in milliseconds.
type benchWindow struct {
	Count int     `json:"count"`
	Mean  float64 `json:"mean_ms"`
	P50   float64 `json:"p50_ms"`
	P99   float64 `json:"p99_ms"`
	Max   float64 `json:"max_ms"`
}

func windowOf(ms []float64) benchWindow {
	return benchWindow{
		Count: len(ms),
		Mean:  stats.Mean(ms),
		P50:   stats.Quantile(ms, 0.5),
		P99:   stats.Quantile(ms, 0.99),
		Max:   stats.Max(ms),
	}
}

// benchTopology is one topology size's row.
type benchTopology struct {
	Topology    string      `json:"topology"`
	Vertices    int         `json:"vertices"`
	Edges       int         `json:"edges"`
	Paths       int         `json:"paths"`
	ColdStartMS float64     `json:"cold_start_ms"`
	WarmStartMS float64     `json:"warm_start_ms"`
	Solve       benchWindow `json:"solve"`
	Read        benchWindow `json:"read"`
}

// benchReport is the BENCH_engine.json shape.
type benchReport struct {
	Name          string          `json:"name"`
	GeneratedUnix int64           `json:"generated_unix"`
	Router        string          `json:"router"`
	R             int             `json:"r"`
	Seed          uint64          `json:"seed"`
	Quick         bool            `json:"quick"`
	Epochs        int             `json:"epochs"`
	Reads         int             `json:"reads"`
	Topologies    []benchTopology `json:"topologies"`
}

type benchCase struct {
	name string
	g    *graph.Graph
}

func benchCases(quick bool) []benchCase {
	if quick {
		return []benchCase{
			{"hypercube-3", gen.Hypercube(3)},
			{"grid-4x4", gen.Grid(4, 4)},
		}
	}
	return []benchCase{
		{"hypercube-3", gen.Hypercube(3)},
		{"hypercube-4", gen.Hypercube(4)},
		{"grid-6x6", gen.Grid(6, 6)},
		{"grid-10x10", gen.Grid(10, 10)},
	}
}

// runEngineBench measures the serving engine across the benchmark
// topologies.
func runEngineBench(seed uint64, quick bool) (*benchReport, error) {
	report := &benchReport{
		Name:          "engine",
		GeneratedUnix: time.Now().Unix(),
		Router:        "raecke",
		R:             3,
		Seed:          seed,
		Quick:         quick,
		Epochs:        32,
		Reads:         2000,
	}
	if quick {
		report.Epochs, report.Reads = 8, 200
	}
	for _, bc := range benchCases(quick) {
		row, err := benchOneTopology(bc, report)
		if err != nil {
			return nil, fmt.Errorf("bench %s: %w", bc.name, err)
		}
		report.Topologies = append(report.Topologies, *row)
	}
	return report, nil
}

func benchOneTopology(bc benchCase, report *benchReport) (*benchTopology, error) {
	cfg := service.Config{
		RouterName: report.Router,
		R:          report.R,
		Seed:       report.Seed,
		Workers:    1,
		QueueDepth: report.Epochs + 1,
	}

	// Cold start: build the router and sample the path system.
	start := time.Now()
	router, err := oblivious.Build(report.Router, bc.g, &oblivious.BuildOptions{Seed: report.Seed})
	if err != nil {
		return nil, err
	}
	cfg.Graph, cfg.Router = bc.g, router
	e, err := service.New(cfg)
	if err != nil {
		return nil, err
	}
	defer e.Close()
	cold := time.Since(start)

	// Warm start: snapshot, then restore — the fleet's reload path.
	var snap bytes.Buffer
	if err := e.WriteSnapshot(&snap); err != nil {
		return nil, err
	}
	start = time.Now()
	restored, err := service.Restore(bytes.NewReader(snap.Bytes()), service.Config{})
	if err != nil {
		return nil, err
	}
	warm := time.Since(start)
	restored.Close()

	row := &benchTopology{
		Topology:    bc.name,
		Vertices:    bc.g.NumVertices(),
		Edges:       bc.g.NumEdges(),
		Paths:       e.System().TotalPaths(),
		ColdStartMS: float64(cold) / float64(time.Millisecond),
		WarmStartMS: float64(warm) / float64(time.Millisecond),
	}

	// Solve latency: a train of random demand epochs, each waited to
	// completion so the measurement is per-solve, not pipeline throughput.
	rng := rand.New(rand.NewPCG(report.Seed, 0xb43c4))
	n := bc.g.NumVertices()
	ctx := context.Background()
	solveMS := make([]float64, 0, report.Epochs)
	for i := 0; i < report.Epochs; i++ {
		d := demand.New()
		for k := 0; k < n/2; k++ {
			u, v := rng.IntN(n), rng.IntN(n)
			if u == v {
				continue
			}
			d.Set(u, v, 0.5+rng.Float64())
		}
		start = time.Now()
		epoch, err := e.SubmitDemand(d)
		if err != nil {
			return nil, err
		}
		out, err := e.Wait(ctx, epoch)
		if err != nil {
			return nil, err
		}
		if !out.OK {
			return nil, fmt.Errorf("epoch %d did not solve: %+v", epoch, out)
		}
		solveMS = append(solveMS, float64(time.Since(start))/float64(time.Millisecond))
	}
	row.Solve = windowOf(solveMS)

	// Read latency: GET /v1/paths through the real handler stack, recorder-
	// backed so only the serving path is on the clock.
	srv := service.NewServer(e, "")
	readMS := make([]float64, 0, report.Reads)
	for i := 0; i < report.Reads; i++ {
		u, v := rng.IntN(n), rng.IntN(n)
		if u == v {
			v = (u + 1) % n
		}
		req := httptest.NewRequest("GET", fmt.Sprintf("/v1/paths?src=%d&dst=%d", u, v), nil)
		rec := httptest.NewRecorder()
		start = time.Now()
		srv.ServeHTTP(rec, req)
		elapsed := time.Since(start)
		if rec.Code != http.StatusOK {
			return nil, fmt.Errorf("read %d/%d -> %d", u, v, rec.Code)
		}
		readMS = append(readMS, float64(elapsed)/float64(time.Millisecond))
	}
	row.Read = windowOf(readMS)
	return row, nil
}

// writeBenchReport renders the report into dir as BENCH_engine.json.
func writeBenchReport(dir string, report *benchReport) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	raw, err := json.MarshalIndent(report, "", " ")
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, benchArtifact)
	return path, os.WriteFile(path, append(raw, '\n'), 0o644)
}
