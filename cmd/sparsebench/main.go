// Command sparsebench regenerates the evaluation tables of the sparse
// semi-oblivious routing reproduction (see DESIGN.md for the experiment
// index and EXPERIMENTS.md for recorded outputs).
//
// Usage:
//
//	sparsebench -experiment all            # run E1..E8 at full size
//	sparsebench -experiment E2,E3 -quick   # selected experiments, small sizes
//	sparsebench -list                      # list experiments
//	sparsebench -bench-out DIR [-quick]    # write BENCH_engine.json: solve
//	                                       # latency per topology size, cold
//	                                       # vs. warm engine construction,
//	                                       # p99 read latency
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"sparseroute/internal/experiments"
)

func main() {
	var (
		expFlag  = flag.String("experiment", "all", "comma-separated experiment names (E1..E8) or 'all'")
		seed     = flag.Uint64("seed", 1, "random seed (identical seeds reproduce identical tables)")
		quick    = flag.Bool("quick", false, "shrink instance sizes (CI/bench mode)")
		listOnly = flag.Bool("list", false, "list experiments and exit")
		benchOut = flag.String("bench-out", "", "write the machine-readable engine benchmark (BENCH_engine.json) into this directory and exit")
	)
	flag.Parse()

	if *listOnly {
		for _, r := range experiments.All() {
			fmt.Printf("%-4s %s\n", r.Name, r.Brief)
		}
		return
	}

	if *benchOut != "" {
		start := time.Now()
		report, err := runEngineBench(*seed, *quick)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		path, err := writeBenchReport(*benchOut, report)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d topologies, %.1fs, seed=%d, quick=%v)\n",
			path, len(report.Topologies), time.Since(start).Seconds(), *seed, *quick)
		return
	}

	var runners []experiments.Runner
	if *expFlag == "all" {
		runners = experiments.All()
	} else {
		for _, name := range strings.Split(*expFlag, ",") {
			r, err := experiments.Find(strings.TrimSpace(name))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			runners = append(runners, r)
		}
	}

	cfg := experiments.Config{Seed: *seed, Quick: *quick}
	failed := false
	for _, r := range runners {
		start := time.Now()
		tbl, err := r.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", r.Name, err)
			failed = true
			continue
		}
		fmt.Printf("%s", tbl.String())
		fmt.Printf("(%s, %.1fs, seed=%d, quick=%v)\n\n", r.Brief, time.Since(start).Seconds(), *seed, *quick)
	}
	if failed {
		os.Exit(1)
	}
}
