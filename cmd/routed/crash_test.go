package main

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"sparseroute/internal/graph/gen"
	"sparseroute/internal/serial"
)

// TestMain doubles the test binary as the routed daemon: with
// ROUTED_CRASH_CHILD set the process runs main() on its own arguments,
// which is what lets the crash drills below SIGKILL a real daemon process
// (in-process engines cannot be kill -9'd).
func TestMain(m *testing.M) {
	if os.Getenv("ROUTED_CRASH_CHILD") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// routedProc is one daemon child process under drill.
type routedProc struct {
	cmd *exec.Cmd
	url string
}

// startRouted launches the test binary as a routed daemon on a random port
// and waits for its serving line.
func startRouted(t *testing.T, args ...string) *routedProc {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe, append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	cmd.Env = append(os.Environ(), "ROUTED_CRASH_CHILD=1")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	urlc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if rest, ok := strings.CutPrefix(line, "routed: serving on "); ok {
				urlc <- rest
			}
		}
	}()
	select {
	case url := <-urlc:
		p := &routedProc{cmd: cmd, url: url}
		t.Cleanup(func() {
			if p.cmd.Process != nil {
				p.cmd.Process.Kill()
				p.cmd.Wait()
			}
		})
		return p
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatal("daemon never reported its serving address")
		return nil
	}
}

// kill9 delivers SIGKILL — no drain, no shutdown snapshot, no deferred
// checkpoint. Whatever the WAL holds is all that survives.
func (p *routedProc) kill9(t *testing.T) {
	t.Helper()
	if err := p.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	p.cmd.Wait()
}

// sigterm drains the daemon gracefully.
func (p *routedProc) sigterm(t *testing.T) {
	t.Helper()
	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { p.cmd.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("daemon ignored SIGTERM")
	}
}

func (p *routedProc) getJSON(t *testing.T, path string) map[string]any {
	t.Helper()
	resp, err := http.Get(p.url + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("bad JSON from %s: %q: %v", path, raw, err)
	}
	return out
}

func (p *routedProc) postJSON(t *testing.T, path, body string) map[string]any {
	t.Helper()
	resp, err := http.Post(p.url+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode/100 != 2 {
		t.Fatalf("POST %s: status %d: %s", path, resp.StatusCode, raw)
	}
	var out map[string]any
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("bad JSON from %s: %q: %v", path, raw, err)
	}
	return out
}

func (p *routedProc) patchJSON(t *testing.T, path, body string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPatch, p.url+path, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("PATCH %s: status %d: %s", path, resp.StatusCode, raw)
	}
}

// eventTypes drains /debug/events into the set of event type strings.
func (p *routedProc) eventTypes(t *testing.T) map[string]bool {
	t.Helper()
	out := map[string]bool{}
	evs, ok := p.getJSON(t, "/debug/events")["events"].([]any)
	if !ok {
		return out
	}
	for _, ev := range evs {
		if typ, ok := ev.(map[string]any)["type"].(string); ok {
			out[typ] = true
		}
	}
	return out
}

func writeTopoFile(t *testing.T, path string) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := serial.EncodeGraph(f, gen.Hypercube(3)); err != nil {
		t.Fatal(err)
	}
}

// TestRoutedKill9Recovery is the end-to-end crash drill: drive demand,
// patches, and link events into a live routed process, SIGKILL it with no
// shutdown path at all, restart on the same state directory, and require
// the replayed daemon to serve the exact pre-crash routing state — same
// path-system hash, same link version, same demand — with the replay
// visible on /debug/events and /debug/vars.
func TestRoutedKill9Recovery(t *testing.T) {
	dir := t.TempDir()
	topo := filepath.Join(dir, "topo.json")
	snap := filepath.Join(dir, "sys.snap")
	writeTopoFile(t, topo)
	args := []string{"-topo", topo, "-snapshot", snap, "-router", "valiant",
		"-s", "3", "-seed", "7", "-no-warm"}

	p1 := startRouted(t, args...)

	// Pre-crash traffic: a base matrix, a patch, a link failure, a brownout,
	// then one final solved epoch so the serving state is settled.
	p1.postJSON(t, "/v1/demand?wait=1", `{"entries":[{"u":0,"v":7,"amount":2},{"u":1,"v":6,"amount":1}]}`)
	p1.patchJSON(t, "/v1/demand", `{"set":[{"u":2,"v":5,"amount":1.5}]}`)
	p1.postJSON(t, "/v1/links", `{"fail":[3]}`)
	p1.postJSON(t, "/v1/links", `{"edge":8,"capacity":0.5}`)
	p1.postJSON(t, "/v1/demand?wait=1", `{"entries":[{"u":0,"v":7,"amount":2},{"u":1,"v":6,"amount":1.5}]}`)

	vars := p1.getJSON(t, "/debug/vars")
	wantHash := vars["path_system"].(map[string]any)["hash"].(string)
	wantVersion := vars["link_version"].(float64)
	if n := vars["wal_records"].(float64); n < 5 {
		t.Fatalf("wal_records=%v, want >= 5 (one per accepted mutation)", n)
	}
	wantRouting := p1.getJSON(t, "/v1/routing")

	// No snapshot was ever written: POST /v1/snapshot never ran and SIGKILL
	// skips the shutdown snapshot. Recovery rides on the WAL alone.
	p1.kill9(t)
	if _, err := os.Stat(snap); !os.IsNotExist(err) {
		t.Fatalf("snapshot unexpectedly present before restart: %v", err)
	}

	p2 := startRouted(t, args...)
	vars2 := p2.getJSON(t, "/debug/vars")
	if got := vars2["path_system"].(map[string]any)["hash"].(string); got != wantHash {
		t.Fatalf("recovered hash %s != pre-crash %s", got, wantHash)
	}
	if got := vars2["link_version"].(float64); got != wantVersion {
		t.Fatalf("recovered link_version %v != pre-crash %v", got, wantVersion)
	}
	if got := vars2["wal_replays"].(float64); got != 1 {
		t.Fatalf("wal_replays=%v, want 1", got)
	}
	if !p2.eventTypes(t)["wal_replay"] {
		t.Fatal("no wal_replay event on /debug/events")
	}

	// The recovered routing serves the same demand over the same paths.
	deadline := time.Now().Add(15 * time.Second)
	for {
		got := p2.getJSON(t, "/v1/routing")
		if fmt.Sprint(got["routing"]) == fmt.Sprint(wantRouting["routing"]) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("recovered routing never converged:\nwant %v\ngot  %v",
				wantRouting["routing"], got["routing"])
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Health reflects the replayed link state: failed edge 3, degraded 8.
	h := p2.getJSON(t, "/healthz")
	if h["status"] != "degraded" {
		t.Fatalf("recovered healthz: %v", h)
	}
	fe := h["failed_edges"].([]any)
	if len(fe) != 1 || fe[0].(float64) != 3 {
		t.Fatalf("recovered failed_edges %v, want [3]", fe)
	}

	// The recovered daemon keeps accepting mutations, and a graceful stop
	// checkpoints: snapshot written, WAL truncated to the re-seeded demand.
	p2.postJSON(t, "/v1/demand?wait=1", `{"entries":[{"u":3,"v":4,"amount":1}]}`)
	p2.sigterm(t)
	if _, err := os.Stat(snap); err != nil {
		t.Fatalf("graceful stop wrote no snapshot: %v", err)
	}
}

// TestRoutedTornWALTail: garbage appended to the log (a frame torn by power
// loss) must not stop the daemon from starting — it truncates the tail,
// journals wal_truncated, and serves the last durable state.
func TestRoutedTornWALTail(t *testing.T) {
	dir := t.TempDir()
	topo := filepath.Join(dir, "topo.json")
	snap := filepath.Join(dir, "sys.snap")
	writeTopoFile(t, topo)
	args := []string{"-topo", topo, "-snapshot", snap, "-router", "valiant",
		"-s", "3", "-seed", "7"}

	p1 := startRouted(t, args...)
	p1.postJSON(t, "/v1/demand?wait=1", `{"entries":[{"u":0,"v":7,"amount":2}]}`)
	p1.kill9(t)

	// Tear the tail: a header promising 256 bytes, then far fewer.
	f, err := os.OpenFile(snap+".wal", os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	var torn [12]byte
	binary.LittleEndian.PutUint32(torn[0:4], 256)
	if _, err := f.Write(torn[:]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	p2 := startRouted(t, args...)
	types := p2.eventTypes(t)
	if !types["wal_truncated"] {
		t.Fatal("no wal_truncated event after torn-tail recovery")
	}
	if got := p2.getJSON(t, "/debug/vars")["wal_truncations"].(float64); got != 1 {
		t.Fatalf("wal_truncations=%v, want 1", got)
	}
	// The last durable demand still serves.
	deadline := time.Now().Add(15 * time.Second)
	for {
		routing := p2.getJSON(t, "/v1/routing")
		if r, ok := routing["routing"].(map[string]any); ok {
			if pairs, ok := r["pairs"].([]any); ok && len(pairs) == 1 {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("recovered routing never served: %v", routing)
		}
		time.Sleep(50 * time.Millisecond)
	}
	p2.sigterm(t)
}
