package main

import (
	"context"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"sparseroute/internal/graph/gen"
	"sparseroute/internal/serial"
)

// startFleetDaemon opens the fleet from o and serves it on a random port,
// returning the base URL plus a stop function performing the daemon's
// graceful drain (every resident shard snapshots on the way down).
func startFleetDaemon(t *testing.T, o *options) (string, func()) {
	t.Helper()
	f, err := buildFleet(o)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- serveFleet(ctx, l, f) }()
	url := "http://" + l.Addr().String()
	stop := func() {
		cancel()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("serveFleet: %v", err)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("fleet daemon did not shut down")
		}
	}
	return url, stop
}

// TestFleetDaemonEndToEnd: serve two topologies from one process → solve an
// epoch on each via the namespaced routes → graceful drain snapshots every
// resident shard → restart restores both warm with identical hashes.
func TestFleetDaemonEndToEnd(t *testing.T) {
	dir := t.TempDir()
	for _, id := range []string{"east", "west"} {
		f, err := os.Create(filepath.Join(dir, id+".topo.json"))
		if err != nil {
			t.Fatal(err)
		}
		if err := serial.EncodeGraph(f, gen.Hypercube(3)); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}

	o, err := parseFlags([]string{
		"-fleet", dir, "-router", "valiant", "-s", "3", "-seed", "11",
		"-workers", "2", "-default", "east",
	})
	if err != nil {
		t.Fatal(err)
	}
	url, stop := startFleetDaemon(t, o)

	hashes := map[string]string{}
	for _, id := range []string{"east", "west"} {
		resp, err := http.Post(url+"/v1/t/"+id+"/demand?wait=1", "application/json",
			strings.NewReader(`{"entries":[{"u":0,"v":7,"amount":2}]}`))
		if err != nil {
			t.Fatal(err)
		}
		ep := decodeBody(t, resp)
		if ep["solved"] != true {
			t.Fatalf("%s epoch not solved: %v", id, ep)
		}
		resp, err = http.Get(url + "/v1/t/" + id + "/debug/vars")
		if err != nil {
			t.Fatal(err)
		}
		vars := decodeBody(t, resp)
		hashes[id] = vars["path_system"].(map[string]any)["hash"].(string)
	}

	// The legacy alias reaches east's engine.
	resp, err := http.Get(url + "/v1/paths?src=0&dst=7")
	if err != nil {
		t.Fatal(err)
	}
	if body := decodeBody(t, resp); body["epoch"].(float64) != 1 {
		t.Fatalf("legacy alias epoch %v, want east's 1", body["epoch"])
	}
	// Unknown topologies 404.
	resp, err = http.Get(url + "/v1/t/mars/paths?src=0&dst=7")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown topology: %d, want 404", resp.StatusCode)
	}

	// Fleet rollup is healthy with both shards resident.
	resp, err = http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if h := decodeBody(t, resp); h["status"] != "ok" || h["resident"].(float64) != 2 {
		t.Fatalf("fleet healthz %v", h)
	}

	// Graceful drain writes east.snap and west.snap.
	stop()
	for _, id := range []string{"east", "west"} {
		if _, err := os.Stat(filepath.Join(dir, id+".snap")); err != nil {
			t.Fatalf("drain left no snapshot for %s: %v", id, err)
		}
	}

	// Restart: both shards restore warm with the exact pre-drain hash.
	url, stop = startFleetDaemon(t, o)
	defer stop()
	for _, id := range []string{"east", "west"} {
		resp, err := http.Get(url + "/v1/t/" + id + "/debug/vars")
		if err != nil {
			t.Fatal(err)
		}
		vars := decodeBody(t, resp)
		if got := vars["path_system"].(map[string]any)["hash"].(string); got != hashes[id] {
			t.Fatalf("%s restored hash %s, want %s", id, got, hashes[id])
		}
	}
	resp, err = http.Get(url + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	fleetVars := decodeBody(t, resp)
	if warm := fleetVars["fleet"].(map[string]any)["warm_starts"].(float64); warm != 2 {
		t.Fatalf("restart warm starts %v, want 2", warm)
	}
}
