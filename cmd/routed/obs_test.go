package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sparseroute/internal/graph/gen"
	"sparseroute/internal/obs"
	"sparseroute/internal/serial"
)

func writeHypercubeTopo(t *testing.T, dir string) string {
	t.Helper()
	topo := filepath.Join(dir, "topo.json")
	f, err := os.Create(topo)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := serial.EncodeGraph(f, gen.Hypercube(3)); err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestDebugHandlerPprofSmoke(t *testing.T) {
	ts := httptest.NewServer(debugHandler())
	defer ts.Close()
	for _, path := range []string{
		"/debug/pprof/",
		"/debug/pprof/goroutine?debug=1",
		"/debug/pprof/cmdline",
		"/debug/pprof/symbol",
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d body %s", path, resp.StatusCode, raw)
		}
		if len(raw) == 0 {
			t.Fatalf("GET %s: empty body", path)
		}
	}
}

// TestDaemonObservabilitySurface is the observability acceptance pass on the
// real daemon: every epoch leaves a retrievable trace, /metrics serves valid
// Prometheus exposition, and a fail -> degraded -> recover drill is
// reconstructible from /debug/events alone — no counters, no health polls.
func TestDaemonObservabilitySurface(t *testing.T) {
	topo := writeHypercubeTopo(t, t.TempDir())
	o, err := parseFlags([]string{
		"-topo", topo, "-router", "valiant", "-s", "3", "-seed", "23", "-workers", "2",
	})
	if err != nil {
		t.Fatal(err)
	}
	url, stop := startDaemon(t, o)
	defer stop()

	// Two epochs of traffic.
	for _, body := range []string{
		`{"entries":[{"u":0,"v":7,"amount":2}]}`,
		`{"entries":[{"u":1,"v":6,"amount":1}]}`,
	} {
		resp, err := http.Post(url+"/v1/demand?wait=1", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if ep := decodeBody(t, resp); ep["solved"] != true {
			t.Fatalf("epoch not solved: %v", ep)
		}
	}

	// Every epoch yields a trace with the full lifecycle decomposition.
	resp, err := http.Get(url + "/debug/trace")
	if err != nil {
		t.Fatal(err)
	}
	traces, _ := decodeBody(t, resp)["traces"].([]any)
	if len(traces) != 2 {
		t.Fatalf("traces: %d, want one per epoch", len(traces))
	}
	for _, raw := range traces {
		tr := raw.(map[string]any)
		if tr["outcome"] != "solved" {
			t.Fatalf("trace %v, want solved", tr)
		}
		if tr["solver"] != "exact" && tr["solver"] != "mwu" {
			t.Fatalf("trace solver %v", tr["solver"])
		}
		attempts, _ := tr["attempts"].([]any)
		if len(attempts) == 0 {
			t.Fatalf("trace without attempts: %v", tr)
		}
		if _, ok := tr["queue_wait_ms"].(float64); !ok {
			t.Fatalf("trace without queue wait: %v", tr)
		}
	}

	// /metrics is valid exposition and carries the engine registry.
	resp, err = http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.PromContentType {
		t.Fatalf("/metrics content type %q", ct)
	}
	if err := obs.ValidateExposition(raw); err != nil {
		t.Fatalf("/metrics invalid: %v\n%s", err, raw)
	}
	if !strings.Contains(string(raw), "sparseroute_engine_epochs_solved 2") {
		t.Fatalf("/metrics missing solved counter:\n%s", raw)
	}

	// Failure drill, then reconstruct it purely from the journal.
	for _, body := range []string{`{"fail":[0,5]}`, `{"restore":[0,5]}`} {
		resp, err := http.Post(url+"/v1/links", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("link event status %d", resp.StatusCode)
		}
	}

	resp, err = http.Get(url + "/debug/events")
	if err != nil {
		t.Fatal(err)
	}
	events, _ := decodeBody(t, resp)["events"].([]any)
	// Replay the journal: the drill must read back as a link event taking the
	// engine ok -> degraded, then a link event bringing it degraded -> ok,
	// with versions strictly increasing.
	type step struct {
		kind string
		to   string
	}
	var replay []step
	lastVersion := 0.0
	for _, raw := range events {
		ev := raw.(map[string]any)
		detail, _ := ev["detail"].(map[string]any)
		switch ev["type"] {
		case "link":
			if v := detail["version"].(float64); v <= lastVersion {
				t.Fatalf("link versions not increasing: %v after %v", v, lastVersion)
			} else {
				lastVersion = v
			}
			replay = append(replay, step{kind: "link"})
		case "health":
			replay = append(replay, step{kind: "health", to: detail["to"].(string)})
		}
	}
	want := []step{
		{kind: "link"},
		{kind: "health", to: "degraded"},
		{kind: "link"},
		{kind: "health", to: "ok"},
	}
	if len(replay) != len(want) {
		t.Fatalf("journal replay %v, want %v", replay, want)
	}
	for i := range want {
		if replay[i] != want[i] {
			t.Fatalf("journal replay step %d: %v, want %v", i, replay[i], want[i])
		}
	}
}
