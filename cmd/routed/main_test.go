package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"sparseroute/internal/graph/gen"
	"sparseroute/internal/serial"
)

// startDaemon builds the engine from o, serves it on a random port, and
// returns the base URL plus a stop function that performs the daemon's
// graceful shutdown (drain + final snapshot when configured).
func startDaemon(t *testing.T, o *options) (string, func()) {
	t.Helper()
	e, walLog, _, err := buildEngine(o)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- serve(ctx, l, e, o.snapshot) }()
	url := "http://" + l.Addr().String()
	stop := func() {
		cancel()
		select {
		case err := <-done:
			if walLog != nil {
				walLog.Close()
			}
			if err != nil {
				t.Fatalf("serve: %v", err)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("daemon did not shut down")
		}
	}
	return url, stop
}

func decodeBody(t *testing.T, resp *http.Response) map[string]any {
	t.Helper()
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("bad JSON %q: %v", raw, err)
	}
	return out
}

func pathSystemHashFromVars(t *testing.T, url string) (string, float64) {
	t.Helper()
	resp, err := http.Get(url + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	vars := decodeBody(t, resp)
	sys := vars["path_system"].(map[string]any)
	return sys["hash"].(string), vars["epochs_solved"].(float64)
}

// TestDaemonEndToEnd is the acceptance test: serve → POST a demand epoch →
// adapted routing visible via GET /v1/paths → /debug/vars shows the epoch
// solved → kill → restart from snapshot → identical path-system hash with
// no resampling.
func TestDaemonEndToEnd(t *testing.T) {
	dir := t.TempDir()
	topo := filepath.Join(dir, "topo.json")
	snap := filepath.Join(dir, "system.snapshot")

	f, err := os.Create(topo)
	if err != nil {
		t.Fatal(err)
	}
	if err := serial.EncodeGraph(f, gen.Hypercube(3)); err != nil {
		t.Fatal(err)
	}
	f.Close()

	o, err := parseFlags([]string{
		"-topo", topo, "-router", "valiant", "-s", "3", "-seed", "11",
		"-workers", "2", "-snapshot", snap,
	})
	if err != nil {
		t.Fatal(err)
	}

	url, stop := startDaemon(t, o)

	// Push one epoch and wait for the solve.
	resp, err := http.Post(url+"/v1/demand?wait=1", "application/json",
		strings.NewReader(`{"entries":[{"u":0,"v":7,"amount":2}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("demand status %d", resp.StatusCode)
	}
	ep := decodeBody(t, resp)
	if ep["solved"] != true {
		t.Fatalf("epoch not solved: %v", ep)
	}

	// The adapted routing is visible through the path lookup: the rates over
	// (0,7)'s candidates sum to the pushed amount.
	resp, err = http.Get(url + "/v1/paths?src=0&dst=7")
	if err != nil {
		t.Fatal(err)
	}
	paths := decodeBody(t, resp)
	if paths["epoch"].(float64) < 1 {
		t.Fatalf("paths not served from a solved epoch: %v", paths)
	}
	var total float64
	for _, p := range paths["paths"].([]any) {
		total += p.(map[string]any)["rate"].(float64)
	}
	if total < 1.99 || total > 2.01 {
		t.Fatalf("rates sum to %v, want 2", total)
	}

	// Metrics show at least one epoch solved; remember the system hash.
	hash1, solved := pathSystemHashFromVars(t, url)
	if solved < 1 {
		t.Fatalf("epochs_solved=%v, want >= 1", solved)
	}

	// Snapshot explicitly, then kill the daemon (graceful shutdown also
	// rewrites the snapshot — both paths must agree).
	resp, err = http.Post(url+"/v1/snapshot", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	snapResp := decodeBody(t, resp)
	if snapResp["hash"] != hash1 {
		t.Fatalf("snapshot hash %v != metrics hash %v", snapResp["hash"], hash1)
	}
	stop()

	// Restart: the topology file is deliberately removed to prove restore
	// does not resample — the snapshot alone must carry the system.
	if err := os.Remove(topo); err != nil {
		t.Fatal(err)
	}
	url2, stop2 := startDaemon(t, o)
	defer stop2()

	hash2, _ := pathSystemHashFromVars(t, url2)
	if hash2 != hash1 {
		t.Fatalf("restored hash %s != original %s", hash2, hash1)
	}

	// The restored daemon keeps serving epochs.
	resp, err = http.Post(url2+"/v1/demand?wait=1", "application/json",
		strings.NewReader(`{"entries":[{"u":1,"v":6,"amount":1}]}`))
	if err != nil {
		t.Fatal(err)
	}
	ep = decodeBody(t, resp)
	if ep["solved"] != true {
		t.Fatalf("restored daemon failed to solve: %v", ep)
	}
}

// TestDaemonShutdownWritesSnapshot checks the graceful-shutdown path writes
// a restorable snapshot even when the operator never POSTed one.
func TestDaemonShutdownWritesSnapshot(t *testing.T) {
	dir := t.TempDir()
	topo := filepath.Join(dir, "topo.json")
	snap := filepath.Join(dir, "auto.snapshot")

	f, err := os.Create(topo)
	if err != nil {
		t.Fatal(err)
	}
	if err := serial.EncodeGraph(f, gen.Hypercube(3)); err != nil {
		t.Fatal(err)
	}
	f.Close()

	o, err := parseFlags([]string{"-topo", topo, "-router", "spf", "-s", "2", "-snapshot", snap})
	if err != nil {
		t.Fatal(err)
	}
	url, stop := startDaemon(t, o)
	if _, err := http.Get(url + "/healthz"); err != nil {
		t.Fatal(err)
	}
	stop()

	sf, err := os.Open(snap)
	if err != nil {
		t.Fatalf("shutdown did not write snapshot: %v", err)
	}
	defer sf.Close()
	s, err := serial.DecodeSnapshot(sf)
	if err != nil {
		t.Fatal(err)
	}
	if s.Router != "spf" || s.R != 2 || s.System.TotalPaths() == 0 {
		t.Fatalf("snapshot metadata wrong: %+v", s)
	}
}

func TestParseFlagsDefaults(t *testing.T) {
	o, err := parseFlags(nil)
	if err != nil {
		t.Fatal(err)
	}
	if o.router != "raecke" || o.r != 4 || o.workers != 2 {
		t.Fatalf("defaults drifted: %+v", o)
	}
	if _, err := parseFlags([]string{"-deadline", "250ms"}); err != nil {
		t.Fatal(err)
	}
	if _, err := parseFlags([]string{"-nope"}); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

func TestBuildEngineUnknownRouter(t *testing.T) {
	dir := t.TempDir()
	topo := filepath.Join(dir, "topo.json")
	f, _ := os.Create(topo)
	serial.EncodeGraph(f, gen.Hypercube(2))
	f.Close()
	o, err := parseFlags([]string{"-topo", topo, "-router", "bogus"})
	if err != nil {
		t.Fatal(err)
	}
	_, _, _, err = buildEngine(o)
	if err == nil {
		t.Fatal("unknown router accepted")
	}
	if !strings.Contains(fmt.Sprint(err), "bogus") {
		t.Fatalf("error should name the router: %v", err)
	}
}

// TestDaemonDeadlineCancelsSolve: with an impossible -deadline every solve is
// canceled rather than orphaned — the epoch reports a fallback, ?wait=0
// returns 202 immediately, and /debug/vars exposes the cancellation metrics.
func TestDaemonDeadlineCancelsSolve(t *testing.T) {
	dir := t.TempDir()
	topo := filepath.Join(dir, "topo.json")
	f, err := os.Create(topo)
	if err != nil {
		t.Fatal(err)
	}
	if err := serial.EncodeGraph(f, gen.Hypercube(3)); err != nil {
		t.Fatal(err)
	}
	f.Close()

	o, err := parseFlags([]string{"-topo", topo, "-router", "spf", "-s", "2", "-deadline", "1ns"})
	if err != nil {
		t.Fatal(err)
	}
	url, stop := startDaemon(t, o)
	defer stop()

	// ?wait=0 must not block on the (doomed) solve.
	resp, err := http.Post(url+"/v1/demand?wait=0", "application/json",
		strings.NewReader(`{"entries":[{"u":0,"v":7,"amount":1}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("wait=0 status %d, want 202", resp.StatusCode)
	}
	resp.Body.Close()

	// ?wait=1 observes the deadline fallback.
	resp, err = http.Post(url+"/v1/demand?wait=1", "application/json",
		strings.NewReader(`{"entries":[{"u":1,"v":6,"amount":1}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("wait=1 status %d, want 200", resp.StatusCode)
	}
	ep := decodeBody(t, resp)
	if ep["fallback"] != true || ep["solved"] == true {
		t.Fatalf("epoch should be a deadline fallback: %v", ep)
	}

	resp, err = http.Get(url + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	vars := decodeBody(t, resp)
	if vars["solves_canceled"].(float64) < 1 {
		t.Fatalf("solves_canceled=%v, want >= 1", vars["solves_canceled"])
	}
	if _, ok := vars["solve_cpu_saved"]; !ok {
		t.Fatal("solve_cpu_saved missing from /debug/vars")
	}
}

// TestDaemonCapacityDrill is the capacity-degradation acceptance test: on a
// diamond (two disjoint 2-hop routes between 0 and 3) a brownout to 50% on one
// route must strictly worsen the published congestion without pruning any
// path, /healthz must report degraded with the override list and no failed
// edges, a snapshot taken mid-brownout must carry the override across a
// restart, and recovering to full capacity must return the daemon to ok with
// the startup hash intact.
func TestDaemonCapacityDrill(t *testing.T) {
	dir := t.TempDir()
	topo := filepath.Join(dir, "topo.json")
	snap := filepath.Join(dir, "system.snapshot")

	// Diamond: 0-1-3 and 0-2-3, all unit edges. Demand 2 over (0,3) splits
	// evenly for congestion 1; with the 0-1 edge at half capacity the optimum
	// moves to a 2/3 vs 4/3 split for congestion 4/3.
	g := gen.Hypercube(2) // 4-cycle 0-1-3-2-0: exactly the diamond above.
	f, err := os.Create(topo)
	if err != nil {
		t.Fatal(err)
	}
	if err := serial.EncodeGraph(f, g); err != nil {
		t.Fatal(err)
	}
	f.Close()

	o, err := parseFlags([]string{
		"-topo", topo, "-router", "ksp", "-k", "2", "-s", "6", "-seed", "7",
		"-workers", "2", "-snapshot", snap,
	})
	if err != nil {
		t.Fatal(err)
	}
	url, stop := startDaemon(t, o)

	// The drill needs both (0,3) routes in the sample; k=2 over a 4-cycle
	// offers exactly the two disjoint ones and s=6 draws make both near-certain
	// (and deterministic for the fixed seed).
	resp, err := http.Get(url + "/v1/paths?src=0&dst=3")
	if err != nil {
		t.Fatal(err)
	}
	if n := len(decodeBody(t, resp)["paths"].([]any)); n != 2 {
		t.Fatalf("sample holds %d unique (0,3) paths, drill needs 2", n)
	}

	// Baseline congestion at full capacity.
	demand := `{"entries":[{"u":0,"v":3,"amount":2}]}`
	resp, err = http.Post(url+"/v1/demand?wait=1", "application/json", strings.NewReader(demand))
	if err != nil {
		t.Fatal(err)
	}
	ep := decodeBody(t, resp)
	if ep["solved"] != true {
		t.Fatalf("baseline epoch not solved: %v", ep)
	}
	baseline := ep["congestion"].(float64)
	if baseline > 1.01 {
		t.Fatalf("baseline congestion %v, want ~1", baseline)
	}
	hash0, _ := pathSystemHashFromVars(t, url)

	// Find the edge 0-1 by endpoints rather than assuming generator ID order.
	weak := -1
	for id, e := range g.Edges() {
		if (e.U == 0 && e.V == 1) || (e.U == 1 && e.V == 0) {
			weak = id
		}
	}
	if weak < 0 {
		t.Fatal("no 0-1 edge in the 4-cycle")
	}

	// Brownout: half the capacity of one route's first hop.
	resp, err = http.Post(url+"/v1/links", "application/json",
		strings.NewReader(fmt.Sprintf(`{"edge":%d,"capacity":0.5}`, weak)))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("capacity event status %d", resp.StatusCode)
	}
	link := decodeBody(t, resp)
	if link["status"] != "degraded" {
		t.Fatalf("capacity event: %v", link)
	}
	if fe, ok := link["failed_edges"].([]any); ok && len(fe) != 0 {
		t.Fatalf("brownout must not report failed edges: %v", link)
	}
	deg := link["degraded_edges"].([]any)[0].(map[string]any)
	if deg["edge"].(float64) != float64(weak) || deg["capacity"].(float64) != 0.5 {
		t.Fatalf("degraded_edges: %v", link["degraded_edges"])
	}

	// No pruning, no resample: both paths still installed, hash unchanged.
	resp, err = http.Get(url + "/v1/paths?src=0&dst=3")
	if err != nil {
		t.Fatal(err)
	}
	if n := len(decodeBody(t, resp)["paths"].([]any)); n != 2 {
		t.Fatalf("brownout pruned paths: %d left", n)
	}
	if h, _ := pathSystemHashFromVars(t, url); h != hash0 {
		t.Fatalf("brownout changed the installed system: %s != %s", h, hash0)
	}

	// Same demand is strictly worse against the reduced capacity.
	resp, err = http.Post(url+"/v1/demand?wait=1", "application/json", strings.NewReader(demand))
	if err != nil {
		t.Fatal(err)
	}
	ep = decodeBody(t, resp)
	if ep["solved"] != true {
		t.Fatalf("brownout epoch not solved: %v", ep)
	}
	if c := ep["congestion"].(float64); c <= baseline+0.01 || c < 1.3 || c > 1.37 {
		t.Fatalf("brownout congestion %v, want ~4/3 (> baseline %v)", c, baseline)
	}

	// /healthz: degraded with the override listed, no failures.
	resp, err = http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded healthz status %d (must keep serving)", resp.StatusCode)
	}
	h := decodeBody(t, resp)
	if h["status"] != "degraded" {
		t.Fatalf("healthz: %v", h)
	}
	if fe, ok := h["failed_edges"].([]any); ok && len(fe) != 0 {
		t.Fatalf("healthz lists failed edges during a brownout: %v", h)
	}
	if len(h["degraded_edges"].([]any)) != 1 {
		t.Fatalf("healthz degraded_edges: %v", h)
	}

	// Snapshot mid-brownout, kill, and check the override is on disk.
	resp, err = http.Post(url+"/v1/snapshot", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	decodeBody(t, resp)
	stop()

	sf, err := os.Open(snap)
	if err != nil {
		t.Fatal(err)
	}
	sd, err := serial.DecodeSnapshot(sf)
	sf.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(sd.FailedEdges) != 0 {
		t.Fatalf("snapshot failed edges %v, want none", sd.FailedEdges)
	}
	if len(sd.Capacities) != 1 || sd.Capacities[weak] != 0.5 {
		t.Fatalf("snapshot capacities %v, want {%d: 0.5}", sd.Capacities, weak)
	}

	// Restart from the snapshot alone: same system, still degraded.
	if err := os.Remove(topo); err != nil {
		t.Fatal(err)
	}
	url2, stop2 := startDaemon(t, o)
	defer stop2()
	if h2, _ := pathSystemHashFromVars(t, url2); h2 != hash0 {
		t.Fatalf("restored hash %s != original %s", h2, hash0)
	}
	resp, err = http.Get(url2 + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if h := decodeBody(t, resp); h["status"] != "degraded" {
		t.Fatalf("restored healthz: %v", h)
	}

	// Recover to full capacity: ok, original hash, baseline congestion.
	resp, err = http.Post(url2+"/v1/links", "application/json",
		strings.NewReader(fmt.Sprintf(`{"edge":%d,"capacity":1}`, weak)))
	if err != nil {
		t.Fatal(err)
	}
	if link := decodeBody(t, resp); link["status"] != "ok" {
		t.Fatalf("recovery event: %v", link)
	}
	resp, err = http.Get(url2 + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if h := decodeBody(t, resp); h["status"] != "ok" {
		t.Fatalf("healthz after recovery: %v", h)
	}
	if h2, _ := pathSystemHashFromVars(t, url2); h2 != hash0 {
		t.Fatalf("recovery changed the installed system: %s != %s", h2, hash0)
	}
	resp, err = http.Post(url2+"/v1/demand?wait=1", "application/json", strings.NewReader(demand))
	if err != nil {
		t.Fatal(err)
	}
	ep = decodeBody(t, resp)
	if ep["solved"] != true {
		t.Fatalf("post-recovery epoch not solved: %v", ep)
	}
	if c := ep["congestion"].(float64); c > 1.01 {
		t.Fatalf("post-recovery congestion %v, want ~1", c)
	}
}

// TestDaemonFailureDrill is the link-failure acceptance test: serve a
// hypercube, drive demand, fail edges mid-traffic via POST /v1/links, and
// check the degraded-mode contract — every still-connected pair stays routed
// off the dead edges, /healthz reports degraded with the failed-edge list,
// a snapshot taken while degraded restores to the identical failed-edge set
// and path-system hash, and a restore event returns the daemon to ok.
func TestDaemonFailureDrill(t *testing.T) {
	dir := t.TempDir()
	topo := filepath.Join(dir, "topo.json")
	snap := filepath.Join(dir, "system.snapshot")

	f, err := os.Create(topo)
	if err != nil {
		t.Fatal(err)
	}
	if err := serial.EncodeGraph(f, gen.Hypercube(3)); err != nil {
		t.Fatal(err)
	}
	f.Close()

	o, err := parseFlags([]string{
		"-topo", topo, "-router", "valiant", "-s", "3", "-seed", "17",
		"-workers", "2", "-snapshot", snap,
	})
	if err != nil {
		t.Fatal(err)
	}
	url, stop := startDaemon(t, o)

	// Traffic before the failure.
	resp, err := http.Post(url+"/v1/demand?wait=1", "application/json",
		strings.NewReader(`{"entries":[{"u":0,"v":7,"amount":2},{"u":1,"v":6,"amount":1}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if ep := decodeBody(t, resp); ep["solved"] != true {
		t.Fatalf("pre-failure epoch not solved: %v", ep)
	}

	// Fail two edges mid-traffic. A 3-cube is 3-edge-connected, so every
	// pair stays connected and must stay routed.
	resp, err = http.Post(url+"/v1/links", "application/json",
		strings.NewReader(`{"fail":[0,5]}`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("link event status %d", resp.StatusCode)
	}
	link := decodeBody(t, resp)
	if link["status"] != "degraded" || link["uncovered_pairs"].(float64) != 0 {
		t.Fatalf("link event: %v", link)
	}

	// /healthz reports degraded with the failed-edge list.
	resp, err = http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded healthz status %d (must keep serving)", resp.StatusCode)
	}
	h := decodeBody(t, resp)
	if h["status"] != "degraded" {
		t.Fatalf("healthz: %v", h)
	}
	edges := h["failed_edges"].([]any)
	if len(edges) != 2 || edges[0].(float64) != 0 || edges[1].(float64) != 5 {
		t.Fatalf("healthz failed_edges: %v", edges)
	}

	// Demand during the failure: solved, and no served path touches a dead
	// edge. /v1/routing exposes the full routing with edge IDs.
	resp, err = http.Post(url+"/v1/demand?wait=1", "application/json",
		strings.NewReader(`{"entries":[{"u":0,"v":7,"amount":2},{"u":2,"v":5,"amount":1}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if ep := decodeBody(t, resp); ep["solved"] != true {
		t.Fatalf("mid-failure epoch not solved: %v", ep)
	}
	resp, err = http.Get(url + "/v1/routing")
	if err != nil {
		t.Fatal(err)
	}
	routing := decodeBody(t, resp)["routing"].(map[string]any)
	for _, pr := range routing["pairs"].([]any) {
		for _, p := range pr.(map[string]any)["paths"].([]any) {
			for _, id := range p.(map[string]any)["edges"].([]any) {
				if id.(float64) == 0 || id.(float64) == 5 {
					t.Fatalf("mid-failure routing rides failed edge %v: %v", id, pr)
				}
			}
		}
	}

	// Snapshot while degraded, remember the hash, kill the daemon.
	hashDegraded, _ := pathSystemHashFromVars(t, url)
	resp, err = http.Post(url+"/v1/snapshot", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	if s := decodeBody(t, resp); s["hash"] != hashDegraded {
		t.Fatalf("snapshot hash %v != metrics hash %v", s["hash"], hashDegraded)
	}
	stop()

	// The on-disk snapshot carries the failed-edge set.
	sf, err := os.Open(snap)
	if err != nil {
		t.Fatal(err)
	}
	sd, err := serial.DecodeSnapshot(sf)
	sf.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(sd.FailedEdges) != 2 || sd.FailedEdges[0] != 0 || sd.FailedEdges[1] != 5 {
		t.Fatalf("snapshot failed edges %v, want [0 5]", sd.FailedEdges)
	}

	// Restart from the degraded snapshot: identical hash, identical failed
	// set, still reporting degraded.
	if err := os.Remove(topo); err != nil {
		t.Fatal(err)
	}
	url2, stop2 := startDaemon(t, o)
	defer stop2()
	hash2, _ := pathSystemHashFromVars(t, url2)
	if hash2 != hashDegraded {
		t.Fatalf("restored hash %s != degraded original %s", hash2, hashDegraded)
	}
	resp, err = http.Get(url2 + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	h = decodeBody(t, resp)
	if h["status"] != "degraded" {
		t.Fatalf("restored healthz: %v", h)
	}

	// Restore the links: health returns to ok and traffic flows.
	resp, err = http.Post(url2+"/v1/links", "application/json",
		strings.NewReader(`{"restore":[0,5]}`))
	if err != nil {
		t.Fatal(err)
	}
	if link := decodeBody(t, resp); link["status"] != "ok" {
		t.Fatalf("restore event: %v", link)
	}
	resp, err = http.Get(url2 + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if h := decodeBody(t, resp); h["status"] != "ok" {
		t.Fatalf("healthz after restore: %v", h)
	}
	resp, err = http.Post(url2+"/v1/demand?wait=1", "application/json",
		strings.NewReader(`{"entries":[{"u":3,"v":4,"amount":1}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if ep := decodeBody(t, resp); ep["solved"] != true {
		t.Fatalf("post-restore epoch not solved: %v", ep)
	}
}
