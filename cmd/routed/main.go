// Command routed is the online routing daemon: the serving form of the
// sparse semi-oblivious construction. At startup it loads a topology and
// runs the offline phase once (sample R candidate paths per pair from an
// oblivious routing) — or restores a previously snapshotted path system and
// skips resampling entirely — then serves the online phase over HTTP:
//
//	POST /v1/demand     push a demand-matrix epoch (?wait=1 blocks on solve)
//	PATCH /v1/demand    push per-pair deltas against the last submitted
//	                    matrix ({"set":[{"u":..,"v":..,"amount":..}],
//	                    "clear":[{"u":..,"v":..}]}); only the touched pairs
//	                    are re-solved when the link state is unchanged, and
//	                    full solves warm-start from the previous routing
//	                    (-no-warm disables both)
//	GET  /v1/paths      candidate paths + live sending rates for ?src=&dst=
//	GET  /v1/routing    the full active routing
//	POST /v1/links      topology event: {"fail":[...]}, {"restore":[...]},
//	                    declarative {"set":[...]}, or a capacity override
//	                    {"edge":id,"capacity":c} (0 fails, (0,1) degrades,
//	                    >=1 restores full capacity)
//	GET  /v1/links      current link state (version, failed + degraded edges,
//	                    status)
//	POST /v1/snapshot   persist the path system to the --snapshot file
//	GET  /debug/vars    expvar metrics (epochs, latency quantiles, fallbacks,
//	                    failed_edges, degraded_edges, recovery_resamples,
//	                    proactive_resamples, compacted_paths, ...)
//	GET  /metrics       the same registry as Prometheus text exposition
//	GET  /debug/trace   recent epoch lifecycle traces — queue wait, solve
//	                    attempt chain, MWU rounds, publish time (?n= bounds
//	                    the count; in-flight MWU progress rides along)
//	GET  /debug/events  time-ordered event journal: link/capacity events,
//	                    health transitions, widening decisions, solve failures
//	GET  /healthz       state machine: ok / degraded (failed or capacity-
//	                    reduced edges, uncovered/at-risk pairs) / 503 closed
//
// -debug-addr serves the pprof profiling surface (/debug/pprof/...) on a
// separate listener, kept off the main port; -slow-solve emits a structured
// log line for epochs slower than the threshold; -headroom enables
// capacity-aware proactive widening (see POST /v1/links capacity overrides).
//
// Reads are lock-free while epochs solve; a solve that fails or misses
// --deadline leaves the last good routing serving (a fallback counter
// increments). A missed deadline cancels the solve itself — the LP/MWU
// solvers poll a context — so the worker is freed immediately instead of
// burning CPU on a result nobody will use (/debug/vars counts
// solves_canceled and estimates solve_cpu_saved). SIGINT/SIGTERM cancels
// in-flight solves for a prompt drain, writes a final snapshot when
// --snapshot is set, and exits.
//
// Link failures do not restart the engine: a POST /v1/links prunes the
// resident path system to the survivors, immediately republishes the active
// routing renormalized off the dead edges, re-solves the demand, and — when
// a pair's candidates all died but the survivor graph still connects it —
// draws fresh recovery paths on the pruned topology (recovery resampling).
// Pairs a failure leaves with a single surviving candidate are widened
// proactively on the survivor graph before a second failure can disconnect
// them, and accumulated recovery paths are garbage-collected once a pair's
// original candidates are all healthy again (bounded per pair meanwhile), so
// a long drill sequence cannot grow the resident system without bound.
//
// Fleet mode (--fleet DIR) serves every topology in a directory from one
// process: each <id>.topo.json (or <id>.snap) becomes a shard reachable
// under /v1/t/<id>/..., built lazily on first touch and bounded by
// --resident with LRU eviction (evicted shards snapshot to <id>.snap and
// reload warm with an identical path-system hash). All shards solve on one
// shared worker pool with round-robin fairness, so a hot tenant cannot
// starve its siblings; /healthz rolls shard states into a fleet state
// machine and /debug/vars nests every shard's registry. The legacy
// un-namespaced /v1/* routes alias to --default (or the sole shard).
// SIGTERM drains by snapshotting every resident shard.
//
// Crash durability: with -snapshot set (or -wal given explicitly) every
// accepted mutation — demand submit, patch, link event — is framed, CRC'd,
// and fsynced to a write-ahead log before it is applied, and acknowledged
// only after the flush. On startup the log is replayed over the newest
// snapshot, so even a kill -9 resumes with the exact pre-crash demand matrix
// and link state; a torn tail (power loss mid-write) is truncated at the
// first bad frame and journaled as wal_truncated instead of refusing to
// start. -checkpoint-every bounds replay work by snapshotting and truncating
// the log automatically; POST /v1/snapshot and shutdown also checkpoint.
//
// A capacity override between 0 and 1 degrades a link without failing it:
// its candidates keep serving, but rate adaptation and the published
// congestion run against a capacity-scaled view of the topology, so traffic
// shifts away from the weakened link exactly as far as the re-optimization
// says it should. /healthz reports "degraded" until every edge is restored;
// snapshots taken while degraded carry the failed-edge set and capacity
// overrides and restore byte-identically.
//
// Example:
//
//	sparseroute topo -kind wan -n 24 -extra 36 -out topo.json
//	routed -topo topo.json -router raecke -s 4 -snapshot sys.snap &
//	curl -X POST 'localhost:8344/v1/demand?wait=1' -d '{"entries":[{"u":0,"v":9,"amount":2}]}'
//	curl 'localhost:8344/v1/paths?src=0&dst=9'
//	curl -X POST localhost:8344/v1/links -d '{"fail":[3,17]}'   # failure drill
//	curl localhost:8344/healthz                                 # => degraded
//	curl -X POST localhost:8344/v1/links -d '{"restore":[3,17]}'
//	curl -X POST localhost:8344/v1/links -d '{"edge":3,"capacity":0.5}'  # brownout
//	curl -X POST localhost:8344/v1/links -d '{"edge":3,"capacity":1}'    # recover
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"sparseroute/internal/fleet"
	"sparseroute/internal/oblivious"
	"sparseroute/internal/serial"
	"sparseroute/internal/service"
	"sparseroute/internal/wal"
)

type options struct {
	addr     string
	topo     string
	router   string
	r        int
	seed     uint64
	dim      int
	trees    int
	k        int
	workers  int
	queue    int
	deadline time.Duration
	snapshot string

	// crash durability
	wal             string
	checkpointEvery int

	// observability + retention (long-running daemons size these)
	debugAddr      string
	slowSolve      time.Duration
	headroom       float64
	outcomeHistory int
	traceDepth     int
	journalDepth   int

	// warm-start pipeline
	noWarm    bool
	warmIters int

	// overload protection
	maxBody         int64
	inflightBytes   int64
	tenantQPS       float64
	tenantBurst     int
	breakerOpens    int
	breakerCooldown time.Duration

	// fleet mode
	fleetDir     string
	resident     int
	defaultShard string
}

func parseFlags(args []string) (*options, error) {
	o := &options{}
	fs := flag.NewFlagSet("routed", flag.ContinueOnError)
	fs.StringVar(&o.addr, "addr", "localhost:8344", "listen address")
	fs.StringVar(&o.topo, "topo", "topo.json", "topology file (ignored when -snapshot restores)")
	fs.StringVar(&o.router, "router", "raecke", strings.Join(oblivious.RouterNames(), "|"))
	fs.IntVar(&o.r, "s", 4, "paths sampled per pair (R)")
	fs.Uint64Var(&o.seed, "seed", 1, "sampling seed")
	fs.IntVar(&o.dim, "dim", 0, "hypercube dimension (valiant; 0 = infer)")
	fs.IntVar(&o.trees, "trees", 12, "raecke tree count")
	fs.IntVar(&o.k, "k", 4, "ksp path count")
	fs.IntVar(&o.workers, "workers", 2, "concurrent epoch solves")
	fs.IntVar(&o.queue, "queue", 16, "pending epochs before load shedding")
	fs.DurationVar(&o.deadline, "deadline", 0, "per-epoch solve deadline; on expiry the solve is canceled and the last good routing keeps serving (0 = none)")
	fs.StringVar(&o.snapshot, "snapshot", "", "snapshot file: restored at startup when present, written by POST /v1/snapshot and at shutdown")
	fs.StringVar(&o.wal, "wal", "", "write-ahead log: every accepted mutation is fsynced here before it is applied and replayed over the snapshot at startup, so a hard kill loses nothing (default <snapshot>.wal when -snapshot is set; \"off\" disables; fleet mode logs per shard regardless of the path)")
	fs.IntVar(&o.checkpointEvery, "checkpoint-every", 0, "snapshot + truncate the write-ahead log automatically after this many logged operations (0 = only on snapshot requests and shutdown)")
	fs.StringVar(&o.debugAddr, "debug-addr", "", "separate listen address for the pprof profiling surface (/debug/pprof/...); empty disables it")
	fs.DurationVar(&o.slowSolve, "slow-solve", 0, "epochs slower than this (queue wait + solve + publish) emit one structured log line and count in slow_solves (0 = disabled)")
	fs.Float64Var(&o.headroom, "headroom", 0, "capacity headroom threshold in (0,1): pairs whose every candidate crosses an edge degraded below it are proactively widened around the weak links (0 = disabled)")
	fs.IntVar(&o.outcomeHistory, "outcome-history", 0, "epoch outcomes retained for ?wait/Wait lookups before eviction (0 = default 128)")
	fs.IntVar(&o.traceDepth, "trace-depth", 0, "epoch lifecycle traces retained on /debug/trace (0 = default 64)")
	fs.IntVar(&o.journalDepth, "journal-depth", 0, "events retained on /debug/events (0 = default 256)")
	fs.BoolVar(&o.noWarm, "no-warm", false, "solve every epoch from scratch: disable MWU warm starts and the PATCH delta fast path")
	fs.IntVar(&o.warmIters, "warm-iters", 0, "fresh MWU rounds for warm-started and delta solves (0 = default 64)")
	fs.Int64Var(&o.maxBody, "max-body", 0, "per-request body cap in bytes; larger POST/PATCH bodies get 413 (0 = default 8 MiB, negative disables)")
	fs.Int64Var(&o.inflightBytes, "inflight-bytes", 0, "total request-body bytes decoded concurrently before mutations shed with 429 (0 = unlimited)")
	fs.Float64Var(&o.tenantQPS, "tenant-qps", 0, "per-tenant demand-mutation quota in ops/sec: excess submits and patches shed with 429 + Retry-After; per shard in fleet mode (0 = unlimited)")
	fs.IntVar(&o.tenantBurst, "tenant-burst", 0, "token-bucket depth for -tenant-qps (0 = ceil of the rate)")
	fs.IntVar(&o.breakerOpens, "breaker", 0, "circuit breaker: consecutive failed solves that open it — reads serve last-known-good, mutations get 503 + Retry-After until a cooldown probe succeeds (0 = disabled)")
	fs.DurationVar(&o.breakerCooldown, "breaker-cooldown", 0, "open-breaker cooldown before the half-open probe (0 = default 5s)")
	fs.StringVar(&o.fleetDir, "fleet", "", "fleet mode: serve every <id>.topo.json / <id>.snap in this directory as /v1/t/<id>/... (ignores -topo/-snapshot)")
	fs.IntVar(&o.resident, "resident", 0, "fleet mode: max engines resident at once; LRU shards snapshot to disk and reload on demand (0 = unlimited)")
	fs.StringVar(&o.defaultShard, "default", "", "fleet mode: topology the legacy /v1/* routes alias to (default: the sole shard when exactly one exists)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	return o, nil
}

// walPath resolves the -wal flag: an explicit path wins, "off" disables the
// log, and the empty default derives `<snapshot>.wal` when -snapshot is set
// (no snapshot and no explicit path means no log — there is nothing durable
// to extend).
func walPath(o *options) string {
	switch {
	case o.wal == "off":
		return ""
	case o.wal != "":
		return o.wal
	case o.snapshot != "":
		return o.snapshot + ".wal"
	}
	return ""
}

// buildEngine restores the engine from o.snapshot when that file exists,
// otherwise samples a fresh path system from the topology file. When a
// write-ahead log is configured it is opened first (recovering a torn tail)
// and replayed over the engine, so the daemon resumes with the exact demand
// matrix and link state it was killed with. The caller closes the returned
// log after the engine drains.
func buildEngine(o *options) (*service.Engine, *wal.Log, bool, error) {
	cfg := service.Config{
		R:                  o.r,
		Seed:               o.seed,
		Workers:            o.workers,
		QueueDepth:         o.queue,
		SolveDeadline:      o.deadline,
		RouterName:         o.router,
		SlowSolveThreshold: o.slowSolve,
		AtRiskHeadroom:     o.headroom,
		OutcomeHistory:     o.outcomeHistory,
		TraceDepth:         o.traceDepth,
		JournalDepth:       o.journalDepth,
		DisableWarmStart:   o.noWarm,
		WarmIterations:     o.warmIters,
		MaxBodyBytes:       o.maxBody,
		MaxInflightBytes:   o.inflightBytes,
		MutationRate:       o.tenantQPS,
		MutationBurst:      o.tenantBurst,
		BreakerThreshold:   o.breakerOpens,
		BreakerCooldown:    o.breakerCooldown,
	}
	var (
		log *wal.Log
		rec *wal.Recovery
	)
	if path := walPath(o); path != "" {
		var err error
		log, rec, err = wal.Open(path, nil)
		if err != nil {
			return nil, nil, false, fmt.Errorf("opening wal %s: %w", path, err)
		}
		cfg.WAL = log
		cfg.CheckpointPath = o.snapshot
		cfg.CheckpointEvery = o.checkpointEvery
	}
	fail := func(err error) (*service.Engine, *wal.Log, bool, error) {
		if log != nil {
			log.Close()
		}
		return nil, nil, false, err
	}
	build := func() (*service.Engine, bool, error) {
		if o.snapshot != "" {
			if f, err := os.Open(o.snapshot); err == nil {
				defer f.Close()
				e, err := service.Restore(f, cfg)
				if err != nil {
					return nil, false, fmt.Errorf("restoring %s: %w", o.snapshot, err)
				}
				return e, true, nil
			}
		}
		f, err := os.Open(o.topo)
		if err != nil {
			return nil, false, err
		}
		defer f.Close()
		g, err := serial.DecodeGraph(f)
		if err != nil {
			return nil, false, err
		}
		router, err := oblivious.Build(o.router, g, &oblivious.BuildOptions{
			Dim: o.dim, Trees: o.trees, K: o.k, Seed: o.seed,
		})
		if err != nil {
			return nil, false, err
		}
		cfg.Graph = g
		cfg.Router = router
		e, err := service.New(cfg)
		return e, false, err
	}
	e, restored, err := build()
	if err != nil {
		return fail(err)
	}
	if stats, err := e.ReplayWAL(rec); err != nil {
		e.Close()
		return fail(err)
	} else if rec != nil && (stats.Applied > 0 || stats.Truncated) {
		fmt.Printf("routed: wal replayed %d ops (%d skipped, truncated=%v)\n",
			stats.Applied, stats.Skipped, stats.Truncated)
	}
	return e, log, restored, nil
}

// serve runs the HTTP server on l until ctx is canceled, then drains:
// in-flight solves complete, a final snapshot is written when configured.
func serve(ctx context.Context, l net.Listener, e *service.Engine, snapshotPath string) error {
	srv := &http.Server{
		Handler: service.NewServer(e, snapshotPath),
		// Slow-header and idle-connection bounds, so stalled clients cannot
		// pin accept slots on a long-running daemon.
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(l) }()
	select {
	case err := <-errc:
		e.Close()
		return err
	case <-ctx.Done():
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		srv.Close()
	}
	e.Close()
	if snapshotPath != "" {
		if _, err := e.SnapshotToFile(snapshotPath); err != nil {
			return fmt.Errorf("final snapshot: %w", err)
		}
	}
	return nil
}

// debugHandler is the profiling surface served on -debug-addr: the pprof
// index plus its named handlers, registered on a private mux so the main
// serving port never exposes profiling and nothing touches the process-global
// DefaultServeMux.
func debugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// serveDebug runs the profiling server on l until ctx is canceled. Errors
// after shutdown begins are expected and dropped; a startup failure surfaces
// on stderr but never takes the serving daemon down with it.
func serveDebug(ctx context.Context, l net.Listener) {
	srv := &http.Server{
		Handler:           debugHandler(),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
	go func() {
		<-ctx.Done()
		srv.Close()
	}()
	if err := srv.Serve(l); err != nil && !errors.Is(err, http.ErrServerClosed) && ctx.Err() == nil {
		fmt.Fprintln(os.Stderr, "routed: debug server:", err)
	}
}

// buildFleet opens the fleet over o.fleetDir, translating the single-engine
// flags into the per-shard engine template.
func buildFleet(o *options) (*fleet.Fleet, error) {
	return fleet.Open(fleet.Config{
		Dir:             o.fleetDir,
		DefaultShard:    o.defaultShard,
		MaxResident:     o.resident,
		Workers:         o.workers,
		DisableWAL:      o.wal == "off",
		CheckpointEvery: o.checkpointEvery,
		TenantQPS:       o.tenantQPS,
		TenantBurst:     o.tenantBurst,
		Engine: service.Config{
			R:                  o.r,
			Seed:               o.seed,
			QueueDepth:         o.queue,
			SolveDeadline:      o.deadline,
			RouterName:         o.router,
			SlowSolveThreshold: o.slowSolve,
			AtRiskHeadroom:     o.headroom,
			OutcomeHistory:     o.outcomeHistory,
			TraceDepth:         o.traceDepth,
			JournalDepth:       o.journalDepth,
			DisableWarmStart:   o.noWarm,
			WarmIterations:     o.warmIters,
			MaxBodyBytes:       o.maxBody,
			MaxInflightBytes:   o.inflightBytes,
			BreakerThreshold:   o.breakerOpens,
			BreakerCooldown:    o.breakerCooldown,
		},
		Build: oblivious.BuildOptions{Dim: o.dim, Trees: o.trees, K: o.k, Seed: o.seed},
	})
}

// serveFleet runs the fleet HTTP server on l until ctx is canceled, then
// drains: every resident shard snapshots to its <id>.snap and closes.
func serveFleet(ctx context.Context, l net.Listener, f *fleet.Fleet) error {
	srv := &http.Server{
		Handler:           fleet.NewServer(f),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(l) }()
	select {
	case err := <-errc:
		f.Close()
		return err
	case <-ctx.Done():
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		srv.Close()
	}
	return f.Close()
}

func main() {
	o, err := parseFlags(os.Args[1:])
	if err != nil {
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if o.debugAddr != "" {
		dl, err := net.Listen("tcp", o.debugAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "routed:", err)
			os.Exit(1)
		}
		fmt.Printf("routed: pprof on http://%s/debug/pprof/\n", dl.Addr())
		go serveDebug(ctx, dl)
	}
	if o.fleetDir != "" {
		f, err := buildFleet(o)
		if err != nil {
			fmt.Fprintln(os.Stderr, "routed:", err)
			os.Exit(1)
		}
		l, err := net.Listen("tcp", o.addr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "routed:", err)
			os.Exit(1)
		}
		ids := f.ShardIDs()
		fmt.Printf("routed: fleet of %d topologies from %s (default %q)\n",
			len(ids), o.fleetDir, f.DefaultShard())
		fmt.Printf("routed: serving on http://%s\n", l.Addr())
		if err := serveFleet(ctx, l, f); err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "routed:", err)
			os.Exit(1)
		}
		return
	}
	e, walLog, restored, err := buildEngine(o)
	if err != nil {
		fmt.Fprintln(os.Stderr, "routed:", err)
		os.Exit(1)
	}
	if walLog != nil {
		// Closed after serve drains — the shutdown snapshot checkpoints
		// (truncates + re-seeds) the log through this handle.
		defer walLog.Close()
	}
	st := e.System().Stats()
	if restored {
		fmt.Printf("routed: restored %s: %d pairs, %d paths (hash %016x) — resampling skipped\n",
			o.snapshot, st.Pairs, st.TotalPaths, e.Hash())
	} else {
		fmt.Printf("routed: sampled %d pairs, %d paths via %s R=%d (hash %016x)\n",
			st.Pairs, st.TotalPaths, o.router, o.r, e.Hash())
	}
	l, err := net.Listen("tcp", o.addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "routed:", err)
		os.Exit(1)
	}
	fmt.Printf("routed: serving on http://%s\n", l.Addr())
	if err := serve(ctx, l, e, o.snapshot); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "routed:", err)
		os.Exit(1)
	}
}
