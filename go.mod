module sparseroute

go 1.22
