package sparseroute_test

import (
	"fmt"
	"log"

	"sparseroute"
)

// The core workflow: fix a few sampled candidate paths per pair before any
// demand exists, then adapt only the sending rates once the demand arrives.
func ExampleSample() {
	g := sparseroute.Hypercube(5)
	router, err := sparseroute.NewValiantRouter(g, 5)
	if err != nil {
		log.Fatal(err)
	}
	d := sparseroute.RandomPermutationDemand(g.NumVertices(), 8, 1)

	system, err := sparseroute.Sample(router, d.Support(), 4, 1)
	if err != nil {
		log.Fatal(err)
	}
	routing, err := system.Adapt(d, nil)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("paths per pair:", system.Sparsity())
	fmt.Println("routes full demand:", routing.ValidateRoutes(g, d, 1e-6) == nil)
	opt, err := sparseroute.OptimalCongestion(g, d, 300)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("within 4x of optimal:", routing.MaxCongestion(g) < 4*opt)
	// Output:
	// paths per pair: 4
	// routes full demand: true
	// within 4x of optimal: true
}

// Sampling R + lambda(u,v) paths per pair is required when demands can be
// larger than one unit: a demand of size lambda across a lambda-edge cut
// needs lambda disjoint candidates.
func ExampleSampleWithCuts() {
	g := sparseroute.Grid(3, 3)
	router := sparseroute.NewKSPRouter(g, 4)
	pairs := []sparseroute.Pair{{U: 0, V: 8}}

	system, err := sparseroute.SampleWithCuts(router, pairs, 2, 0, 7)
	if err != nil {
		log.Fatal(err)
	}
	// The corner-to-corner min cut of the 3x3 grid is 2, so 2+2 samples.
	fmt.Println("min cut:", sparseroute.MinCut(g, 0, 8))
	fmt.Println("samples:", system.NumSampled(pairs[0]))
	// Output:
	// min cut: 2
	// samples: 4
}

// Completion-time sampling unions hop-budgeted samples across geometric
// scales, so adaptation can trade congestion against dilation.
func ExampleSampleForCompletionTime() {
	g := sparseroute.Grid(4, 4)
	d := sparseroute.RandomPermutationDemand(16, 4, 3)
	system, err := sparseroute.SampleForCompletionTime(g, d.Support(), 2, 3)
	if err != nil {
		log.Fatal(err)
	}
	res, err := system.AdaptCompletionTime(d, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("dilation within system bound:", res.Dilation <= system.MaxHops())
	fmt.Println("objective is cong+dil:", res.CompletionTime == res.Congestion+float64(res.Dilation))
	// Output:
	// dilation within system bound: true
	// objective is cong+dil: true
}
